// gb::platform::Service — the concurrent serving core: a worker pool behind
// a bounded admission queue, per-request Governors, explicit overload
// shedding, and a stall watchdog.
//
// The Service executes opaque jobs of shape void(Governor&). Each request
// owns one Governor for its whole life; that single object is what the
// submitting client cancels through, what the watchdog reads poll progress
// from, and what the kernels actually poll — so cross-thread cancellation
// and liveness detection need no extra plumbing.
//
// Admission control: submit() is the only entry point and it fails fast —
// when the queue already holds `queue_limit` requests, or the process
// metered footprint exceeds `shed_bytes`, the request is *shed* with
// OverloadedError instead of being allowed to degrade every request behind
// it. Shedding is deterministic: nothing is partially enqueued (the request
// record is fully constructed before the queue is touched, and a failed
// push leaves no trace), so an OOM or a shed during submit leaves the
// service exactly as serviceable as before the call.
//
// Two arming modes per job:
//   * policy-governed (default) — the worker configures the request's
//     governor from the ServicePolicy (deadline, byte budget) and installs
//     it with GovernorScope around the job;
//   * self-governed — the job arms the governor itself (lagraph::Runner
//     binds it as an external governor and arms per slice); the worker only
//     runs the job. Needed because nested arms do not recapture deadlines.
//
// Stall watchdog: a background thread samples every running request's
// governor poll count. A request whose count stops advancing for
// `watchdog_stall_ms` is cancelled through the ordinary cross-thread cancel
// path — the same CancelledError surface a client cancel uses — and counted
// in the stats. Cancellation stays cooperative: the watchdog can only
// reclaim workers from jobs that still reach a poll point or check
// Governor::cancelled().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "platform/governor.hpp"

namespace gb::platform {

/// The bounded admission queue (or the shed_bytes watermark) rejected a new
/// request. Maps to GxB_OVERLOADED at the C boundary.
class OverloadedError : public std::runtime_error {
 public:
  OverloadedError() : std::runtime_error("gb: service overloaded") {}
};

struct ServicePolicy {
  int workers = 2;                ///< worker threads executing requests
  std::size_t queue_limit = 16;   ///< max queued (not running); 0 = unbounded
  double request_timeout_ms = 0;  ///< per-request deadline (policy-governed)
  std::size_t request_budget = 0; ///< per-request byte budget (delta); 0 none
  std::size_t shed_bytes = 0;     ///< shed new work above this footprint; 0 off
  double watchdog_stall_ms = 0;   ///< cancel after this long with no polls; 0 off
  double watchdog_period_ms = 5;  ///< watchdog sampling period
};

/// Point-in-time counters; consistent snapshot under the service lock.
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t shed = 0;        ///< rejected with OverloadedError
  std::uint64_t completed = 0;   ///< ran to normal return
  std::uint64_t failed = 0;      ///< ended with a non-cancel exception
  std::uint64_t cancelled = 0;   ///< ended via CancelledError (any source)
  std::uint64_t watchdog_cancels = 0;  ///< cancels issued by the watchdog
  std::uint64_t queue_depth = 0;       ///< currently queued
  std::uint64_t running = 0;           ///< currently executing
};

class Service {
 public:
  enum class State : int { queued = 0, running, done, failed, cancelled };

  /// One request's shared record. Tickets are cheap handles to it.
  class Ticket {
   public:
    Ticket() = default;

    [[nodiscard]] bool valid() const noexcept { return req_ != nullptr; }
    [[nodiscard]] State state() const noexcept;

    /// Block until the request reaches a terminal state; returns it.
    State wait() const;

    /// Request cooperative cancellation (queued requests are dropped when a
    /// worker pops them; running requests observe it at their next poll).
    void cancel() const noexcept;

    /// The terminal error, rethrown (no-op unless state() == failed).
    void rethrow() const;

    /// The request's governor (for tests and advanced callers).
    [[nodiscard]] Governor* governor() const noexcept;

   private:
    friend class Service;
    struct Request;
    explicit Ticket(std::shared_ptr<Request> r) : req_(std::move(r)) {}
    std::shared_ptr<Request> req_;
  };

  explicit Service(ServicePolicy policy = {});
  ~Service();  // stop() + join

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] const ServicePolicy& policy() const noexcept { return policy_; }

  /// Admit a job, or shed it with OverloadedError. Strong guarantee: a
  /// throw (shed or OOM) leaves the service unchanged and serviceable.
  /// `self_governed` jobs arm the passed governor themselves (Runner path);
  /// policy-governed jobs run under a GovernorScope armed from the policy.
  Ticket submit(std::function<void(Governor&)> job, bool self_governed = false);

  [[nodiscard]] ServiceStats stats() const;

  /// Block until no request is queued or running (new submits may still
  /// arrive afterwards); then drain the epoch limbo so retired snapshots
  /// free deterministically. Returns the number of snapshots freed.
  std::size_t quiesce();

  /// Stop accepting work, cancel queued requests, join workers + watchdog.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void worker_loop();
  void watchdog_loop();
  void finish(const std::shared_ptr<Ticket::Request>& r, State s,
              std::exception_ptr err) noexcept;

  ServicePolicy policy_;
  mutable std::mutex m_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // quiesce(): queue empty and none running
  std::condition_variable watchdog_cv_;  // watchdog: period tick or stopping
  std::deque<std::shared_ptr<Ticket::Request>> queue_;
  std::vector<std::shared_ptr<Ticket::Request>> running_;
  ServiceStats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace gb::platform
