// gb::platform::Service — the concurrent serving core: a worker pool behind
// a bounded admission queue, per-request Governors, explicit overload
// shedding, and a stall watchdog.
//
// The Service executes opaque jobs of shape void(Governor&). Each request
// owns one Governor for its whole life; that single object is what the
// submitting client cancels through, what the watchdog reads poll progress
// from, and what the kernels actually poll — so cross-thread cancellation
// and liveness detection need no extra plumbing.
//
// Admission control: submit() is the only entry point and it fails fast —
// when the queue already holds `queue_limit` requests, or the process
// metered footprint exceeds `shed_bytes`, the request is *shed* with
// OverloadedError instead of being allowed to degrade every request behind
// it. Shedding is deterministic: nothing is partially enqueued (the request
// record is fully constructed before the queue is touched, and a failed
// push leaves no trace), so an OOM or a shed during submit leaves the
// service exactly as serviceable as before the call.
//
// Two arming modes per job:
//   * policy-governed (default) — the worker configures the request's
//     governor from the ServicePolicy (deadline, byte budget) and installs
//     it with GovernorScope around the job;
//   * self-governed — the job arms the governor itself (lagraph::Runner
//     binds it as an external governor and arms per slice); the worker only
//     runs the job. Needed because nested arms do not recapture deadlines.
//
// Stall watchdog: a background thread samples every running request's
// governor poll count. A request whose count stops advancing for
// `watchdog_stall_ms` is cancelled through the ordinary cross-thread cancel
// path — the same CancelledError surface a client cancel uses — and counted
// in the stats. Cancellation stays cooperative: the watchdog can only
// reclaim workers from jobs that still reach a poll point or check
// Governor::cancelled().
//
// Batching admission stage (submit_coalesced): requests that share a caller-
// chosen key coalesce into one *batch* — a single queue entry, a single
// Governor, a single worker dispatch — whose job sees every member's
// (arg, payload) through a BatchView and writes each member's result into
// its payload. A batch stays open to new members until it holds `batch_max`
// requests or until `batch_window_us` has elapsed since it opened; the
// window is honoured even by an otherwise-idle worker (it is the caller's
// explicit latency budget for coalescing), and a zero window means a batch
// is mature the instant it opens, so the default config adds zero latency.
// The per-member submit/poll/wait/cancel contract is unchanged: each member
// keeps its own ticket; a member cancel only masks that member's row
// (BatchView::cancelled flips, the member finishes State::cancelled) and
// never cancels the batch. Admission control meters the batch as ONE unit:
// it occupies one queue_limit slot and the watchdog tracks its single
// governor. batch_max <= 1 turns the stage off: submit_coalesced degrades
// to a plain submit() wrapping the job in a one-member view.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "platform/governor.hpp"

namespace gb::platform {

/// The bounded admission queue (or the shed_bytes watermark) rejected a new
/// request. Maps to GxB_OVERLOADED at the C boundary.
class OverloadedError : public std::runtime_error {
 public:
  OverloadedError() : std::runtime_error("gb: service overloaded") {}
};

struct ServicePolicy {
  int workers = 2;                ///< worker threads executing requests
  std::size_t queue_limit = 16;   ///< max queued (not running); 0 = unbounded
  double request_timeout_ms = 0;  ///< per-request deadline (policy-governed)
  std::size_t request_budget = 0; ///< per-request byte budget (delta); 0 none
  std::size_t shed_bytes = 0;     ///< shed new work above this footprint; 0 off
  double watchdog_stall_ms = 0;   ///< cancel after this long with no polls; 0 off
  double watchdog_period_ms = 5;  ///< watchdog sampling period
  // Batching admission stage (submit_coalesced only; plain submit() never
  // batches). Overridable per process via LAGRAPH_BATCH_MAX /
  // LAGRAPH_BATCH_WINDOW_US (read once, like the other platform knobs).
  std::size_t batch_max = 1;    ///< max requests per coalesced batch; <=1 = off
  double batch_window_us = 0;   ///< how long an open batch may wait for members
};

/// Point-in-time counters; consistent snapshot under the service lock.
struct ServiceStats {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t shed = 0;        ///< rejected with OverloadedError
  std::uint64_t completed = 0;   ///< ran to normal return
  std::uint64_t failed = 0;      ///< ended with a non-cancel exception
  std::uint64_t cancelled = 0;   ///< ended via CancelledError (any source)
  std::uint64_t watchdog_cancels = 0;  ///< cancels issued by the watchdog
  std::uint64_t queue_depth = 0;       ///< currently queued (batch = 1 unit)
  std::uint64_t running = 0;           ///< currently executing (batch = 1 unit)
  std::uint64_t batches = 0;           ///< coalesced batches dispatched
  std::uint64_t batched_requests = 0;  ///< member requests inside those batches
};

class Service {
 public:
  enum class State : int { queued = 0, running, done, failed, cancelled };

  /// One request's shared record. Tickets are cheap handles to it.
  class Ticket {
   public:
    Ticket() = default;

    [[nodiscard]] bool valid() const noexcept { return req_ != nullptr; }
    [[nodiscard]] State state() const noexcept;

    /// Block until the request reaches a terminal state; returns it.
    State wait() const;

    /// Request cooperative cancellation (queued requests are dropped when a
    /// worker pops them; running requests observe it at their next poll).
    void cancel() const noexcept;

    /// The terminal error, rethrown (no-op unless state() == failed).
    void rethrow() const;

    /// The request's governor (for tests and advanced callers).
    [[nodiscard]] Governor* governor() const noexcept;

   private:
    friend class Service;
    struct Request;
    explicit Ticket(std::shared_ptr<Request> r) : req_(std::move(r)) {}
    std::shared_ptr<Request> req_;
  };

  /// Read-only view of one coalesced batch, handed to its BatchJob. Member
  /// order is submission order within the batch. cancelled(i) is live: a
  /// member cancelled after dispatch flips it, and the job should skip
  /// de-batching into that member's payload (the service finishes the member
  /// State::cancelled regardless).
  class BatchView {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] std::uint64_t arg(std::size_t i) const noexcept {
      return entries_[i].arg;
    }
    [[nodiscard]] void* payload(std::size_t i) const noexcept {
      return entries_[i].payload;
    }
    [[nodiscard]] bool cancelled(std::size_t i) const noexcept;

   private:
    friend class Service;
    struct Entry {
      std::uint64_t arg = 0;
      void* payload = nullptr;
      const std::atomic<bool>* cancelled = nullptr;  ///< null = never
    };
    explicit BatchView(std::vector<Entry> e) : entries_(std::move(e)) {}
    std::vector<Entry> entries_;
  };

  /// A batched job: runs once per batch, with the batch's single governor.
  using BatchJob = std::function<void(Governor&, const BatchView&)>;

  explicit Service(ServicePolicy policy = {});
  ~Service();  // stop() + join

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] const ServicePolicy& policy() const noexcept { return policy_; }

  /// Admit a job, or shed it with OverloadedError. Strong guarantee: a
  /// throw (shed or OOM) leaves the service unchanged and serviceable.
  /// `self_governed` jobs arm the passed governor themselves (Runner path);
  /// policy-governed jobs run under a GovernorScope armed from the policy.
  Ticket submit(std::function<void(Governor&)> job, bool self_governed = false);

  /// Admit a request into the coalescing stage: joins the open batch for
  /// `key` if one exists (and is not yet full/sealed), otherwise opens a new
  /// one — whose `job` runs the whole batch when it dispatches. `payload`
  /// is where the job de-batches this member's result to; it stays alive at
  /// least until the member's ticket is terminal. Sheds exactly like
  /// submit() (a whole batch counts as one queue_limit unit), with the same
  /// strong guarantee. With batch_max <= 1 this is a plain submit() of a
  /// one-member batch.
  Ticket submit_coalesced(const std::string& key, std::uint64_t arg,
                          std::shared_ptr<void> payload, BatchJob job,
                          bool self_governed = false);

  [[nodiscard]] ServiceStats stats() const;

  /// Block until no request is queued or running (new submits may still
  /// arrive afterwards); then drain the epoch limbo so retired snapshots
  /// free deterministically. Returns the number of snapshots freed.
  std::size_t quiesce();

  /// Stop accepting work, cancel queued requests, join workers + watchdog.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  struct Batch;

  void worker_loop();
  void watchdog_loop();
  void finish(const std::shared_ptr<Ticket::Request>& r, State s,
              std::exception_ptr err) noexcept;
  void finish_members(const std::shared_ptr<Batch>& b, State s,
                      std::exception_ptr err);

  ServicePolicy policy_;
  mutable std::mutex m_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // quiesce(): queue empty and none running
  std::condition_variable watchdog_cv_;  // watchdog: period tick or stopping
  std::deque<std::shared_ptr<Ticket::Request>> queue_;
  std::vector<std::shared_ptr<Ticket::Request>> running_;
  /// Open (joinable) batches by key. Every value's carrier request is also
  /// in queue_; sealing removes the map entry, never the queue entry.
  std::unordered_map<std::string, std::shared_ptr<Batch>> open_;
  ServiceStats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace gb::platform
