// High-resolution wall-clock timing utilities shared by benches and tests.
#pragma once

#include <chrono>
#include <cstdint>

namespace gb::platform {

/// Monotonic wall-clock timer. Construction starts the clock.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restart the clock.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gb::platform
