#pragma once

// Thread-local, metered kernel workspace.
//
// Kernels need short-lived scratch (dense accumulators, merge buffers, sort
// staging) on every call. Allocating it fresh each time is a malloc tax on
// the hottest paths, and plain std::vector scratch is invisible to both the
// memory meter and the allocation fault injector. The Workspace fixes both:
// buffers are checked out of a per-thread, per-call-site LIFO freelist of
// Buf<T> (hence every byte flows through platform::Alloc), and checked back
// in on scope exit with their capacity retained for the next call. Each
// site keeps up to four buffers warm, so nested re-entry of the same site
// (the resumable drivers' retry wrappers do this) still reuses.
//
// Contracts:
//  * Isolation  — pools are thread_local; no cross-thread sharing, no locks.
//                 A handle must be destroyed on the thread that created it.
//  * Determinism — pools are keyed by (element type, call-site tag), so the
//                 retained capacity of each site depends only on the call
//                 history of that site on that thread. After a warm-up call,
//                 repeating an operation performs no workspace growth, which
//                 is what lets the fault-injection soak assert that the
//                 memory meter returns exactly to its per-call baseline.
//  * Exception safety — checkin is noexcept; if a kernel throws (e.g. an
//                 injected bad_alloc), in-flight handles return their
//                 buffers to the pool during unwinding and nothing leaks.
//  * Metering   — retained bytes stay visible in MemoryMeter and are
//                 reported per thread via Workspace::thread_stats();
//                 Workspace::clear_thread() releases them.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "platform/alloc.hpp"

namespace gb::platform {

/// Per-thread arena counters, exposed for tests and diagnostics.
struct WorkspaceStats {
  std::size_t cached_bytes = 0;    ///< bytes held by checked-in buffers
  std::size_t cached_buffers = 0;  ///< number of checked-in buffers
  std::uint64_t checkouts = 0;     ///< total checkouts on this thread
  std::uint64_t reuses = 0;        ///< checkouts served by a warm buffer
};

namespace ws_detail {

struct ThreadArena {
  WorkspaceStats stats{};
  // One entry per pool that has ever been used on this thread; lets
  // clear_thread() drop every retained buffer without knowing the types.
  std::vector<void (*)() noexcept> clearers;
};

inline ThreadArena& arena() noexcept {
  static thread_local ThreadArena a;
  return a;
}

/// Fixed-depth LIFO freelist for one (element type, call-site tag) pair.
/// Most kernel sites do not nest with themselves, so the top slot captures
/// all the reuse; the resumable drivers, however, re-enter kernels from
/// retry/degradation wrappers up to a few frames deep, and a depth of four
/// keeps every level of that nesting warm. Checkout pops the most recently
/// returned buffer (LIFO — the one most likely still in cache); checkin
/// pushes, and when the list is full the incoming buffer replaces the
/// smallest cached one if it is strictly larger (otherwise it is freed), so
/// the retained capacities stay a deterministic function of the site's call
/// history.
template <class T, class Site>
class Pool {
 public:
  static constexpr std::size_t kDepth = 4;

  static Pool& local() noexcept {
    static thread_local Pool pool;
    return pool;
  }

  Buf<T> take() noexcept {
    register_once();
    auto& st = arena().stats;
    ++st.checkouts;
    if (count_ == 0) return Buf<T>{};
    --count_;
    Buf<T> b = std::move(slots_[count_]);
    st.cached_bytes -= b.capacity() * sizeof(T);
    --st.cached_buffers;
    if (b.capacity() > 0) ++st.reuses;
    return b;
  }

  void give_back(Buf<T>&& b) noexcept {
    b.clear();  // destroy elements, keep capacity
    auto& st = arena().stats;
    if (count_ < kDepth) {
      st.cached_bytes += b.capacity() * sizeof(T);
      ++st.cached_buffers;
      slots_[count_++] = std::move(b);
      return;
    }
    // Full: deterministic retention — keep the kDepth largest capacities.
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < kDepth; ++i) {
      if (slots_[i].capacity() < slots_[smallest].capacity()) smallest = i;
    }
    if (b.capacity() <= slots_[smallest].capacity()) return;  // free b
    st.cached_bytes -= slots_[smallest].capacity() * sizeof(T);
    st.cached_bytes += b.capacity() * sizeof(T);
    slots_[smallest] = std::move(b);
  }

 private:
  Pool() = default;

  static void drop() noexcept {
    Pool& p = local();
    auto& st = arena().stats;
    for (std::size_t i = 0; i < p.count_; ++i) {
      st.cached_bytes -= p.slots_[i].capacity() * sizeof(T);
      --st.cached_buffers;
      Buf<T>{}.swap(p.slots_[i]);  // release through Alloc
    }
    p.count_ = 0;
  }

  void register_once() noexcept {
    if (registered_) return;
    try {
      arena().clearers.push_back(&Pool::drop);
      registered_ = true;
    } catch (...) {
      // Registry growth failed: the pool still works, it just can't be
      // emptied by clear_thread() until a later registration succeeds.
    }
  }

  Buf<T> slots_[kDepth]{};
  std::size_t count_ = 0;
  bool registered_ = false;
};

}  // namespace ws_detail

/// RAII checkout handle. Dereferences to the underlying Buf<T>; returns the
/// buffer (capacity retained, contents cleared) to its pool on destruction,
/// including during exception unwinding.
template <class T, class Site>
class [[nodiscard]] WsBuf {
 public:
  WsBuf() : buf_(ws_detail::Pool<T, Site>::local().take()) {}

  /// Checkout sized to n value-initialized elements. May throw bad_alloc
  /// (the growth goes through Alloc, so it is a fault-injection point); the
  /// already-checked-out buffer is returned to the pool on that path.
  explicit WsBuf(std::size_t n) : WsBuf() { buf_.resize(n); }

  WsBuf(WsBuf&& other) noexcept
      : buf_(std::move(other.buf_)), owns_(std::exchange(other.owns_, false)) {}
  WsBuf& operator=(WsBuf&&) = delete;
  WsBuf(const WsBuf&) = delete;
  WsBuf& operator=(const WsBuf&) = delete;

  ~WsBuf() {
    if (owns_) ws_detail::Pool<T, Site>::local().give_back(std::move(buf_));
  }

  Buf<T>& operator*() noexcept { return buf_; }
  const Buf<T>& operator*() const noexcept { return buf_; }
  Buf<T>* operator->() noexcept { return &buf_; }
  const Buf<T>* operator->() const noexcept { return &buf_; }

 private:
  Buf<T> buf_;
  bool owns_ = true;
};

/// Facade over the thread-local pools.
///
/// Usage (Site is an incomplete tag struct naming the call site):
///   struct mxm_acc;  // at namespace scope, once per site
///   auto acc_h = platform::Workspace::checkout<mxm_acc, double>(n);
///   auto& acc = *acc_h;   // Buf<double>, n value-initialized elements
class Workspace {
 public:
  template <class Site, class T>
  [[nodiscard]] static WsBuf<T, Site> checkout() {
    return WsBuf<T, Site>{};
  }

  template <class Site, class T>
  [[nodiscard]] static WsBuf<T, Site> checkout(std::size_t n) {
    return WsBuf<T, Site>(n);
  }

  /// Counters for the calling thread's arena.
  static WorkspaceStats thread_stats() noexcept {
    return ws_detail::arena().stats;
  }

  /// Release every buffer retained by the calling thread's pools. Safe at
  /// any quiescent point (no live handles on this thread).
  static void clear_thread() noexcept {
    for (auto* f : ws_detail::arena().clearers) f();
  }
};

}  // namespace gb::platform
