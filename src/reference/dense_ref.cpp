// Translation-unit anchor for the header-only dense mimics; also hosts a
// self-check used by the test harness to confirm the mimic layer itself is
// wired correctly (a mimic that cannot reproduce a hand-computed 2x2 product
// would invalidate every conformance test built on it).
#include "reference/dense_ref.hpp"

namespace ref {

bool self_check() {
  DenseMat<double> a(2, 2);
  a.set(0, 0, 1.0);
  a.set(0, 1, 2.0);
  a.set(1, 0, 3.0);
  DenseMat<double> c(2, 2);
  mxm(c, static_cast<const DenseMat<bool>*>(nullptr),
      static_cast<const gb::Plus*>(nullptr), gb::plus_times<double>(), a, a);
  // [1 2; 3 0]^2 = [7 2; 3 6]
  return c.p(0, 0) && c.v(0, 0) == 7.0 && c.p(0, 1) && c.v(0, 1) == 2.0 &&
         c.p(1, 0) && c.v(1, 0) == 3.0 && c.p(1, 1) && c.v(1, 1) == 6.0;
}

}  // namespace ref
