// Dense "mimic" implementations of every GraphBLAS operation — the role the
// MATLAB scripts play for SuiteSparse:GraphBLAS (§II-A): each operation is
// written a second time, in the simplest possible form (triply-nested loops,
// dense value array + separate Boolean pattern array), so it can be visually
// inspected for conformance to the spec. The test suite executes every
// operation both ways and requires identical values AND identical patterns.
//
// Nothing here is intended to be fast.
#pragma once

#include <optional>
#include <vector>

#include "graphblas/graphblas.hpp"

namespace ref {

using gb::Index;

/// Dense vector mimic: value array plus separate pattern array.
template <class T>
struct DenseVec {
  Index n = 0;
  std::vector<gb::storage_t<T>> val;
  std::vector<std::uint8_t> pat;

  DenseVec() = default;
  explicit DenseVec(Index size) : n(size), val(size, gb::storage_t<T>{}), pat(size, 0) {}

  void set(Index i, const T& v) {
    val[i] = static_cast<gb::storage_t<T>>(v);
    pat[i] = 1;
  }
};

/// Dense matrix mimic.
template <class T>
struct DenseMat {
  Index nrows = 0, ncols = 0;
  std::vector<gb::storage_t<T>> val;
  std::vector<std::uint8_t> pat;

  DenseMat() = default;
  DenseMat(Index r, Index c)
      : nrows(r), ncols(c), val(r * c, gb::storage_t<T>{}), pat(r * c, 0) {}

  [[nodiscard]] gb::storage_t<T>& v(Index i, Index j) {
    return val[i * ncols + j];
  }
  [[nodiscard]] const gb::storage_t<T>& v(Index i, Index j) const {
    return val[i * ncols + j];
  }
  [[nodiscard]] std::uint8_t& p(Index i, Index j) { return pat[i * ncols + j]; }
  [[nodiscard]] std::uint8_t p(Index i, Index j) const {
    return pat[i * ncols + j];
  }

  void set(Index i, Index j, const T& x) {
    v(i, j) = static_cast<gb::storage_t<T>>(x);
    p(i, j) = 1;
  }
};

// --- conversions -------------------------------------------------------------

template <class T>
DenseVec<T> from_gb(const gb::Vector<T>& u) {
  DenseVec<T> d(u.size());
  std::vector<Index> idx;
  std::vector<T> val;
  u.extract_tuples(idx, val);
  for (std::size_t k = 0; k < idx.size(); ++k) d.set(idx[k], val[k]);
  return d;
}

template <class T>
DenseMat<T> from_gb(const gb::Matrix<T>& a) {
  DenseMat<T> d(a.nrows(), a.ncols());
  std::vector<Index> r, c;
  std::vector<T> v;
  a.extract_tuples(r, c, v);
  for (std::size_t k = 0; k < r.size(); ++k) d.set(r[k], c[k], v[k]);
  return d;
}

template <class T>
gb::Vector<T> to_gb(const DenseVec<T>& d) {
  gb::Vector<T> u(d.n);
  for (Index i = 0; i < d.n; ++i)
    if (d.pat[i]) u.set_element(i, static_cast<T>(d.val[i]));
  return u;
}

template <class T>
gb::Matrix<T> to_gb(const DenseMat<T>& d) {
  gb::Matrix<T> a(d.nrows, d.ncols);
  for (Index i = 0; i < d.nrows; ++i)
    for (Index j = 0; j < d.ncols; ++j)
      if (d.p(i, j)) a.set_element(i, j, static_cast<T>(d.v(i, j)));
  return a;
}

// --- comparisons (value AND pattern, §II-A) -----------------------------------

template <class T>
bool equal(const DenseVec<T>& a, const gb::Vector<T>& b) {
  if (a.n != b.size()) return false;
  auto d = from_gb(b);
  for (Index i = 0; i < a.n; ++i) {
    if (a.pat[i] != d.pat[i]) return false;
    if (a.pat[i] && !(a.val[i] == d.val[i])) return false;
  }
  return true;
}

template <class T>
bool equal(const DenseMat<T>& a, const gb::Matrix<T>& b) {
  if (a.nrows != b.nrows() || a.ncols != b.ncols()) return false;
  auto d = from_gb(b);
  for (std::size_t k = 0; k < a.pat.size(); ++k) {
    if (a.pat[k] != d.pat[k]) return false;
    if (a.pat[k] && !(a.val[k] == d.val[k])) return false;
  }
  return true;
}

// --- descriptor helpers -------------------------------------------------------

template <class T>
DenseMat<T> op_input(const DenseMat<T>& a, bool transpose) {
  if (!transpose) return a;
  DenseMat<T> t(a.ncols, a.nrows);
  for (Index i = 0; i < a.nrows; ++i)
    for (Index j = 0; j < a.ncols; ++j)
      if (a.p(i, j)) t.set(j, i, a.v(i, j));
  return t;
}

/// Mask verdict at one position, straight from the spec's words.
template <class MT>
bool mask_allows(const DenseVec<MT>* mask, Index i, const gb::Descriptor& d) {
  if (!mask) return true;
  bool m = mask->pat[i] && (d.mask_structural || mask->val[i] != MT{});
  return d.mask_complement ? !m : m;
}

template <class MT>
bool mask_allows(const DenseMat<MT>* mask, Index i, Index j,
                 const gb::Descriptor& d) {
  if (!mask) return true;
  bool m = mask->p(i, j) && (d.mask_structural || mask->v(i, j) != MT{});
  return d.mask_complement ? !m : m;
}

// --- the write-back rule, restated densely ------------------------------------
// Accum is a pointer-like: nullptr means no accumulator. An independent
// restatement of graphblas/mask_accum.hpp for cross-checking.

template <class CT, class ZT, class MT, class Accum>
void dense_write_back(DenseVec<CT>& c, const DenseVec<MT>* mask,
                      const Accum* accum, const DenseVec<ZT>& t,
                      const gb::Descriptor& d) {
  for (Index i = 0; i < c.n; ++i) {
    // Z at position i:
    bool zp;
    CT zv{};
    if (accum) {
      if (c.pat[i] && t.pat[i]) {
        zp = true;
        zv = static_cast<CT>((*accum)(c.val[i], t.val[i]));
      } else if (c.pat[i]) {
        zp = true;
        zv = c.val[i];
      } else if (t.pat[i]) {
        zp = true;
        zv = static_cast<CT>(t.val[i]);
      } else {
        zp = false;
      }
    } else {
      zp = t.pat[i] != 0;
      if (zp) zv = static_cast<CT>(t.val[i]);
    }
    if (mask_allows(mask, i, d)) {
      c.pat[i] = zp ? 1 : 0;
      c.val[i] = zp ? zv : CT{};
    } else if (d.replace) {
      c.pat[i] = 0;
      c.val[i] = CT{};
    }  // else: keep old entry
  }
}

template <class CT, class ZT, class MT, class Accum>
void dense_write_back(DenseMat<CT>& c, const DenseMat<MT>* mask,
                      const Accum* accum, const DenseMat<ZT>& t,
                      const gb::Descriptor& d) {
  for (Index i = 0; i < c.nrows; ++i) {
    for (Index j = 0; j < c.ncols; ++j) {
      bool zp;
      CT zv{};
      if (accum) {
        if (c.p(i, j) && t.p(i, j)) {
          zp = true;
          zv = static_cast<CT>((*accum)(c.v(i, j), t.v(i, j)));
        } else if (c.p(i, j)) {
          zp = true;
          zv = c.v(i, j);
        } else if (t.p(i, j)) {
          zp = true;
          zv = static_cast<CT>(t.v(i, j));
        } else {
          zp = false;
        }
      } else {
        zp = t.p(i, j) != 0;
        if (zp) zv = static_cast<CT>(t.v(i, j));
      }
      if (mask_allows(mask, i, j, d)) {
        c.p(i, j) = zp ? 1 : 0;
        c.v(i, j) = zp ? zv : CT{};
      } else if (d.replace) {
        c.p(i, j) = 0;
        c.v(i, j) = CT{};
      }
    }
  }
}

// --- operation mimics -----------------------------------------------------

/// mxm mimic: brute-force triply-nested loop, per the paper's description of
/// the MATLAB matrix multiply mimic.
template <class CT, class MT, class Accum, class SR, class AT, class BT>
void mxm(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
         const SR& sr, const DenseMat<AT>& a0, const DenseMat<BT>& b0,
         const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  auto b = op_input(b0, d.transpose_b);
  using ZT = typename SR::value_type;
  DenseMat<ZT> t(a.nrows, b.ncols);
  for (Index i = 0; i < a.nrows; ++i) {
    for (Index j = 0; j < b.ncols; ++j) {
      bool any = false;
      ZT acc{};
      for (Index k = 0; k < a.ncols; ++k) {
        if (!a.p(i, k) || !b.p(k, j)) continue;
        ZT prod = static_cast<ZT>(sr.mul(a.v(i, k), b.v(k, j)));
        acc = any ? sr.add(acc, prod) : prod;
        any = true;
      }
      if (any) t.set(i, j, acc);
    }
  }
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class SR, class AT, class UT>
void mxv(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
         const SR& sr, const DenseMat<AT>& a0, const DenseVec<UT>& u,
         const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  using ZT = typename SR::value_type;
  DenseVec<ZT> t(a.nrows);
  for (Index i = 0; i < a.nrows; ++i) {
    bool any = false;
    ZT acc{};
    for (Index k = 0; k < a.ncols; ++k) {
      if (!a.p(i, k) || !u.pat[k]) continue;
      ZT prod = static_cast<ZT>(sr.mul(a.v(i, k), u.val[k]));
      acc = any ? sr.add(acc, prod) : prod;
      any = true;
    }
    if (any) t.set(i, acc);
  }
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class SR, class AT, class UT>
void vxm(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
         const SR& sr, const DenseVec<UT>& u, const DenseMat<AT>& a0,
         const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  using ZT = typename SR::value_type;
  DenseVec<ZT> t(a.ncols);
  for (Index j = 0; j < a.ncols; ++j) {
    bool any = false;
    ZT acc{};
    for (Index k = 0; k < a.nrows; ++k) {
      if (!u.pat[k] || !a.p(k, j)) continue;
      ZT prod = static_cast<ZT>(sr.mul(u.val[k], a.v(k, j)));
      acc = any ? sr.add(acc, prod) : prod;
      any = true;
    }
    if (any) t.set(j, acc);
  }
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class Op, class UT, class VT>
void ewise_add(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
               Op op, const DenseVec<UT>& u, const DenseVec<VT>& v,
               const gb::Descriptor& d = gb::desc_default) {
  using ZT = std::decay_t<decltype(op(std::declval<UT>(), std::declval<VT>()))>;
  DenseVec<ZT> t(u.n);
  for (Index i = 0; i < u.n; ++i) {
    if (u.pat[i] && v.pat[i]) {
      t.set(i, static_cast<ZT>(op(u.val[i], v.val[i])));
    } else if (u.pat[i]) {
      t.set(i, static_cast<ZT>(u.val[i]));
    } else if (v.pat[i]) {
      t.set(i, static_cast<ZT>(v.val[i]));
    }
  }
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class Op, class UT, class VT>
void ewise_mult(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
                Op op, const DenseVec<UT>& u, const DenseVec<VT>& v,
                const gb::Descriptor& d = gb::desc_default) {
  using ZT = std::decay_t<decltype(op(std::declval<UT>(), std::declval<VT>()))>;
  DenseVec<ZT> t(u.n);
  for (Index i = 0; i < u.n; ++i) {
    if (u.pat[i] && v.pat[i]) t.set(i, static_cast<ZT>(op(u.val[i], v.val[i])));
  }
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class Op, class AT, class BT>
void ewise_add(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
               Op op, const DenseMat<AT>& a0, const DenseMat<BT>& b0,
               const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  auto b = op_input(b0, d.transpose_b);
  using ZT = std::decay_t<decltype(op(std::declval<AT>(), std::declval<BT>()))>;
  DenseMat<ZT> t(a.nrows, a.ncols);
  for (Index i = 0; i < a.nrows; ++i) {
    for (Index j = 0; j < a.ncols; ++j) {
      if (a.p(i, j) && b.p(i, j)) {
        t.set(i, j, static_cast<ZT>(op(a.v(i, j), b.v(i, j))));
      } else if (a.p(i, j)) {
        t.set(i, j, static_cast<ZT>(a.v(i, j)));
      } else if (b.p(i, j)) {
        t.set(i, j, static_cast<ZT>(b.v(i, j)));
      }
    }
  }
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class Op, class AT, class BT>
void ewise_mult(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
                Op op, const DenseMat<AT>& a0, const DenseMat<BT>& b0,
                const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  auto b = op_input(b0, d.transpose_b);
  using ZT = std::decay_t<decltype(op(std::declval<AT>(), std::declval<BT>()))>;
  DenseMat<ZT> t(a.nrows, a.ncols);
  for (Index i = 0; i < a.nrows; ++i)
    for (Index j = 0; j < a.ncols; ++j)
      if (a.p(i, j) && b.p(i, j))
        t.set(i, j, static_cast<ZT>(op(a.v(i, j), b.v(i, j))));
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class F, class UT>
void apply(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum, F f,
           const DenseVec<UT>& u, const gb::Descriptor& d = gb::desc_default) {
  using ZT = std::decay_t<decltype(f(std::declval<UT>()))>;
  DenseVec<ZT> t(u.n);
  for (Index i = 0; i < u.n; ++i)
    if (u.pat[i]) t.set(i, static_cast<ZT>(f(u.val[i])));
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class F, class AT>
void apply(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum, F f,
           const DenseMat<AT>& a0, const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  using ZT = std::decay_t<decltype(f(std::declval<AT>()))>;
  DenseMat<ZT> t(a.nrows, a.ncols);
  for (Index i = 0; i < a.nrows; ++i)
    for (Index j = 0; j < a.ncols; ++j)
      if (a.p(i, j)) t.set(i, j, static_cast<ZT>(f(a.v(i, j))));
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class F, class AT, class S>
void select(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum, F f,
            const DenseMat<AT>& a0, S thunk,
            const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  DenseMat<AT> t(a.nrows, a.ncols);
  for (Index i = 0; i < a.nrows; ++i)
    for (Index j = 0; j < a.ncols; ++j)
      if (a.p(i, j) && f(a.v(i, j), i, j, thunk)) t.set(i, j, a.v(i, j));
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class M, class AT>
void reduce(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
            const M& monoid, const DenseMat<AT>& a0,
            const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  using ZT = typename M::value_type;
  DenseVec<ZT> t(a.nrows);
  for (Index i = 0; i < a.nrows; ++i) {
    bool any = false;
    ZT acc{};
    for (Index j = 0; j < a.ncols; ++j) {
      if (!a.p(i, j)) continue;
      ZT x = static_cast<ZT>(a.v(i, j));
      acc = any ? monoid(acc, x) : x;
      any = true;
    }
    if (any) t.set(i, acc);
  }
  dense_write_back(w, mask, accum, t, d);
}

template <class M, class AT>
typename M::value_type reduce_scalar(const M& monoid, const DenseMat<AT>& a) {
  using ZT = typename M::value_type;
  ZT acc = monoid.identity;
  for (Index i = 0; i < a.nrows; ++i)
    for (Index j = 0; j < a.ncols; ++j)
      if (a.p(i, j)) acc = monoid(acc, static_cast<ZT>(a.v(i, j)));
  return acc;
}

template <class CT, class MT, class Accum, class AT>
void transpose(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
               const DenseMat<AT>& a0,
               const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, !d.transpose_a);
  DenseMat<AT> t = a;
  dense_write_back(c, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class UT>
void extract(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
             const DenseVec<UT>& u, const std::vector<Index>& isel,
             const gb::Descriptor& d = gb::desc_default) {
  DenseVec<UT> t(isel.size());
  for (Index k = 0; k < static_cast<Index>(isel.size()); ++k)
    if (u.pat[isel[k]]) t.set(k, u.val[isel[k]]);
  dense_write_back(w, mask, accum, t, d);
}

template <class CT, class MT, class Accum, class AT>
void extract(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
             const DenseMat<AT>& a0, const std::vector<Index>& isel,
             const std::vector<Index>& jsel,
             const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  DenseMat<AT> t(isel.size(), jsel.size());
  for (Index k = 0; k < static_cast<Index>(isel.size()); ++k)
    for (Index l = 0; l < static_cast<Index>(jsel.size()); ++l)
      if (a.p(isel[k], jsel[l])) t.set(k, l, a.v(isel[k], jsel[l]));
  dense_write_back(c, mask, accum, t, d);
}

/// assign mimic: accumulate inside the region, then mask over the whole of C
/// with no accumulator — the exact wording of the spec.
template <class CT, class MT, class Accum, class UT>
void assign(DenseVec<CT>& w, const DenseVec<MT>* mask, const Accum* accum,
            const DenseVec<UT>& u, const std::vector<Index>& isel,
            const gb::Descriptor& d = gb::desc_default) {
  DenseVec<CT> t(w.n);
  t = w;
  for (Index k = 0; k < static_cast<Index>(isel.size()); ++k) {
    Index i = isel[k];
    if (u.pat[k]) {
      if (accum && w.pat[i]) {
        t.set(i, static_cast<CT>((*accum)(w.val[i], u.val[k])));
      } else {
        t.set(i, static_cast<CT>(u.val[k]));
      }
    } else if (!accum) {
      t.pat[i] = 0;
      t.val[i] = CT{};
    }
  }
  const int* no_acc = nullptr;
  (void)no_acc;
  dense_write_back(w, mask, static_cast<const gb::Plus*>(nullptr), t, d);
}

template <class CT, class MT, class Accum, class S>
void assign_scalar(DenseVec<CT>& w, const DenseVec<MT>* mask,
                   const Accum* accum, const S& s,
                   const std::vector<Index>& isel,
                   const gb::Descriptor& d = gb::desc_default) {
  DenseVec<CT> t = w;
  for (Index i : isel) {
    if (accum && w.pat[i]) {
      t.set(i, static_cast<CT>((*accum)(w.val[i], s)));
    } else {
      t.set(i, static_cast<CT>(s));
    }
  }
  dense_write_back(w, mask, static_cast<const gb::Plus*>(nullptr), t, d);
}

template <class CT, class MT, class Accum, class AT>
void assign(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
            const DenseMat<AT>& a, const std::vector<Index>& isel,
            const std::vector<Index>& jsel,
            const gb::Descriptor& d = gb::desc_default) {
  DenseMat<CT> t = c;
  for (Index k = 0; k < static_cast<Index>(isel.size()); ++k) {
    for (Index l = 0; l < static_cast<Index>(jsel.size()); ++l) {
      Index i = isel[k], j = jsel[l];
      if (a.p(k, l)) {
        if (accum && c.p(i, j)) {
          t.set(i, j, static_cast<CT>((*accum)(c.v(i, j), a.v(k, l))));
        } else {
          t.set(i, j, static_cast<CT>(a.v(k, l)));
        }
      } else if (!accum) {
        t.p(i, j) = 0;
        t.v(i, j) = CT{};
      }
    }
  }
  dense_write_back(c, mask, static_cast<const gb::Plus*>(nullptr), t, d);
}

template <class CT, class MT, class Accum, class Op, class AT, class BT>
void kronecker(DenseMat<CT>& c, const DenseMat<MT>* mask, const Accum* accum,
               Op op, const DenseMat<AT>& a0, const DenseMat<BT>& b0,
               const gb::Descriptor& d = gb::desc_default) {
  auto a = op_input(a0, d.transpose_a);
  auto b = op_input(b0, d.transpose_b);
  using ZT = std::decay_t<decltype(op(std::declval<AT>(), std::declval<BT>()))>;
  DenseMat<ZT> t(a.nrows * b.nrows, a.ncols * b.ncols);
  for (Index ia = 0; ia < a.nrows; ++ia)
    for (Index ja = 0; ja < a.ncols; ++ja)
      if (a.p(ia, ja))
        for (Index ib = 0; ib < b.nrows; ++ib)
          for (Index jb = 0; jb < b.ncols; ++jb)
            if (b.p(ib, jb))
              t.set(ia * b.nrows + ib, ja * b.ncols + jb,
                    static_cast<ZT>(op(a.v(ia, ja), b.v(ib, jb))));
  dense_write_back(c, mask, accum, t, d);
}

}  // namespace ref
