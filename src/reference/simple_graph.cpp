#include "reference/simple_graph.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <queue>
#include <set>

namespace ref {

namespace {

/// Undirected neighbour sets (deduplicated, self-loops dropped).
std::vector<std::set<Index>> undirected_neighbors(const SimpleGraph& g) {
  std::vector<std::set<Index>> nb(g.n);
  for (Index u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) {
      if (u == v) continue;
      nb[u].insert(v);
      nb[v].insert(u);
    }
  }
  return nb;
}

}  // namespace

std::vector<std::int64_t> bfs_levels(const SimpleGraph& g, Index source) {
  std::vector<std::int64_t> level(g.n, kUnreached);
  std::deque<Index> q;
  level[source] = 0;
  q.push_back(source);
  while (!q.empty()) {
    Index u = q.front();
    q.pop_front();
    for (const auto& [v, w] : g.adj[u]) {
      if (level[v] == kUnreached) {
        level[v] = level[u] + 1;
        q.push_back(v);
      }
    }
  }
  return level;
}

bool valid_bfs_parents(const SimpleGraph& g, Index source,
                       const std::vector<std::int64_t>& parent,
                       const std::vector<std::int64_t>& level) {
  if (parent.size() != g.n) return false;
  // Edge lookup for parent validation.
  std::vector<std::set<Index>> out(g.n);
  for (Index u = 0; u < g.n; ++u)
    for (const auto& [v, w] : g.adj[u]) out[u].insert(v);

  for (Index v = 0; v < g.n; ++v) {
    if (level[v] == kUnreached) {
      if (parent[v] != kUnreached) return false;
      continue;
    }
    if (v == source) {
      if (parent[v] != static_cast<std::int64_t>(source)) return false;
      continue;
    }
    auto p = parent[v];
    if (p < 0 || p >= static_cast<std::int64_t>(g.n)) return false;
    // The parent must be one BFS level above v and adjacent to v.
    if (level[static_cast<Index>(p)] != level[v] - 1) return false;
    if (out[static_cast<Index>(p)].count(v) == 0) return false;
  }
  return true;
}

std::vector<double> dijkstra(const SimpleGraph& g, Index source) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.n, inf);
  using Item = std::pair<double, Index>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : g.adj[u]) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        pq.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

std::vector<double> bellman_ford(const SimpleGraph& g, Index source) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.n, inf);
  dist[source] = 0.0;
  for (Index round = 0; round + 1 < g.n; ++round) {
    bool changed = false;
    for (Index u = 0; u < g.n; ++u) {
      if (dist[u] == inf) continue;
      for (const auto& [v, w] : g.adj[u]) {
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // Negative-cycle detection pass.
  for (Index u = 0; u < g.n; ++u) {
    if (dist[u] == inf) continue;
    for (const auto& [v, w] : g.adj[u]) {
      if (dist[u] + w < dist[v]) return {};
    }
  }
  return dist;
}

std::vector<Index> connected_components(const SimpleGraph& g) {
  std::vector<Index> parent(g.n);
  std::iota(parent.begin(), parent.end(), Index{0});
  auto find = [&parent](Index x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (Index u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) {
      Index ru = find(u), rv = find(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  }
  std::vector<Index> rep(g.n);
  for (Index u = 0; u < g.n; ++u) rep[u] = find(u);
  // Normalise: representative = min id in component.
  std::vector<Index> minid(g.n, ~Index{0});
  for (Index u = 0; u < g.n; ++u) minid[rep[u]] = std::min(minid[rep[u]], u);
  for (Index u = 0; u < g.n; ++u) rep[u] = minid[rep[u]];
  return rep;
}

std::vector<Index> strongly_connected_components(const SimpleGraph& g) {
  // Tarjan with an explicit stack (recursion depth can hit n).
  const Index n = g.n;
  constexpr Index undef = ~Index{0};
  std::vector<Index> index(n, undef), low(n, 0), comp(n, undef);
  std::vector<Index> scc_stack;
  std::vector<std::uint8_t> on_stack(n, 0);
  Index counter = 0;

  struct Frame {
    Index v;
    std::size_t edge;
  };
  for (Index root = 0; root < n; ++root) {
    if (index[root] != undef) continue;
    std::vector<Frame> call{{root, 0}};
    index[root] = low[root] = counter++;
    scc_stack.push_back(root);
    on_stack[root] = 1;
    while (!call.empty()) {
      auto& fr = call.back();
      if (fr.edge < g.adj[fr.v].size()) {
        Index w = g.adj[fr.v][fr.edge].first;
        ++fr.edge;
        if (index[w] == undef) {
          index[w] = low[w] = counter++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          call.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        Index v = fr.v;
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
        if (low[v] == index[v]) {
          // Pop the SCC rooted at v.
          for (;;) {
            Index w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            comp[w] = v;
            if (w == v) break;
          }
        }
      }
    }
  }
  // Normalise labels to the minimum member id.
  std::vector<Index> minid(n, undef);
  for (Index v = 0; v < n; ++v) {
    minid[comp[v]] = std::min(minid[comp[v]] == undef ? v : minid[comp[v]], v);
  }
  std::vector<Index> out(n);
  for (Index v = 0; v < n; ++v) out[v] = minid[comp[v]];
  return out;
}

std::vector<std::uint64_t> kcore(const SimpleGraph& g) {
  auto nb = undirected_neighbors(g);
  const Index n = g.n;
  std::vector<std::uint64_t> core(n, 0);
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<std::size_t> deg(n);
  for (Index v = 0; v < n; ++v) deg[v] = nb[v].size();

  std::uint64_t k = 1;
  Index remaining = n;
  while (remaining > 0) {
    bool peeled = true;
    while (peeled) {
      peeled = false;
      for (Index v = 0; v < n; ++v) {
        if (!alive[v] || deg[v] >= k) continue;
        alive[v] = 0;
        --remaining;
        peeled = true;
        for (Index u : nb[v]) {
          if (alive[u] && deg[u] > 0) --deg[u];
        }
      }
    }
    for (Index v = 0; v < n; ++v) {
      if (alive[v]) core[v] = k;
    }
    ++k;
  }
  return core;
}

std::uint64_t count_triangles(const SimpleGraph& g) {
  auto nb = undirected_neighbors(g);
  std::uint64_t count = 0;
  for (Index u = 0; u < g.n; ++u) {
    for (Index v : nb[u]) {
      if (v <= u) continue;
      for (Index w : nb[v]) {
        if (w <= v) continue;
        if (nb[u].count(w)) ++count;
      }
    }
  }
  return count;
}

std::uint64_t ktruss_edge_count(const SimpleGraph& g, std::uint64_t k) {
  // Peel edges with support < k-2 until fixpoint; return surviving edge
  // count (undirected edges counted once).
  auto nb = undirected_neighbors(g);
  bool changed = true;
  while (changed) {
    changed = false;
    for (Index u = 0; u < g.n; ++u) {
      std::vector<Index> drop;
      for (Index v : nb[u]) {
        if (v < u) continue;  // handle each edge once per sweep
        std::uint64_t support = 0;
        for (Index w : nb[u])
          if (w != v && nb[v].count(w)) ++support;
        if (support + 2 < k) drop.push_back(v);
      }
      for (Index v : drop) {
        nb[u].erase(v);
        nb[v].erase(u);
        changed = true;
      }
    }
  }
  std::uint64_t edges = 0;
  for (Index u = 0; u < g.n; ++u) edges += nb[u].size();
  return edges / 2;
}

std::uint64_t count_wedges(const SimpleGraph& g) {
  auto nb = undirected_neighbors(g);
  std::uint64_t w = 0;
  // Enumerate centre + unordered neighbour pair directly.
  for (Index v = 0; v < g.n; ++v) {
    std::vector<Index> ns(nb[v].begin(), nb[v].end());
    for (std::size_t a = 0; a < ns.size(); ++a)
      for (std::size_t b = a + 1; b < ns.size(); ++b) ++w;
  }
  return w;
}

std::uint64_t count_claws(const SimpleGraph& g) {
  auto nb = undirected_neighbors(g);
  std::uint64_t c = 0;
  for (Index v = 0; v < g.n; ++v) {
    std::uint64_t d = nb[v].size();
    if (d >= 3) c += d * (d - 1) * (d - 2) / 6;
  }
  return c;
}

std::uint64_t count_4cycles(const SimpleGraph& g) {
  // Each C4 has two diagonals; summing C(codegree, 2) over unordered vertex
  // pairs counts every cycle exactly twice.
  auto nb = undirected_neighbors(g);
  std::uint64_t twice = 0;
  for (Index u = 0; u < g.n; ++u) {
    for (Index v = u + 1; v < g.n; ++v) {
      std::uint64_t codeg = 0;
      for (Index w : nb[u])
        if (w != u && w != v && nb[v].count(w)) ++codeg;
      twice += codeg * (codeg - 1) / 2;
    }
  }
  return twice / 2;
}

std::uint64_t count_tailed_triangles(const SimpleGraph& g) {
  auto nb = undirected_neighbors(g);
  std::uint64_t count = 0;
  for (Index u = 0; u < g.n; ++u) {
    for (Index v : nb[u]) {
      if (v <= u) continue;
      for (Index w : nb[v]) {
        if (w <= v || !nb[u].count(w)) continue;
        // (u, v, w) is a triangle; attach every outside pendant edge.
        for (Index t : {u, v, w}) {
          for (Index x : nb[t]) {
            if (x != u && x != v && x != w) ++count;
          }
        }
      }
    }
  }
  return count;
}

std::vector<double> pagerank(const SimpleGraph& g, double damping, int iters,
                             double tol) {
  const double n = static_cast<double>(g.n);
  std::vector<double> r(g.n, 1.0 / n), next(g.n);
  std::vector<double> outdeg(g.n, 0.0);
  for (Index u = 0; u < g.n; ++u)
    outdeg[u] = static_cast<double>(g.adj[u].size());
  for (int it = 0; it < iters; ++it) {
    double dangling = 0.0;
    for (Index u = 0; u < g.n; ++u)
      if (outdeg[u] == 0.0) dangling += r[u];
    std::fill(next.begin(), next.end(),
              (1.0 - damping) / n + damping * dangling / n);
    for (Index u = 0; u < g.n; ++u) {
      if (outdeg[u] == 0.0) continue;
      double share = damping * r[u] / outdeg[u];
      for (const auto& [v, w] : g.adj[u]) next[v] += share;
    }
    double delta = 0.0;
    for (Index u = 0; u < g.n; ++u) delta += std::abs(next[u] - r[u]);
    r.swap(next);
    if (delta < tol) break;
  }
  return r;
}

std::vector<double> betweenness(const SimpleGraph& g) {
  std::vector<double> bc(g.n, 0.0);
  for (Index s = 0; s < g.n; ++s) {
    // Brandes: BFS from s accumulating path counts, then dependency sweep.
    std::vector<std::vector<Index>> pred(g.n);
    std::vector<double> sigma(g.n, 0.0);
    std::vector<std::int64_t> dist(g.n, kUnreached);
    std::vector<Index> order;
    sigma[s] = 1.0;
    dist[s] = 0;
    std::deque<Index> q{s};
    while (!q.empty()) {
      Index u = q.front();
      q.pop_front();
      order.push_back(u);
      for (const auto& [v, w] : g.adj[u]) {
        if (dist[v] == kUnreached) {
          dist[v] = dist[u] + 1;
          q.push_back(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          pred[v].push_back(u);
        }
      }
    }
    std::vector<double> delta(g.n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Index v = *it;
      for (Index u : pred[v]) {
        delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
      }
      if (v != s) bc[v] += delta[v];
    }
  }
  return bc;
}

bool valid_mis(const SimpleGraph& g, const std::vector<std::uint8_t>& in_set) {
  auto nb = undirected_neighbors(g);
  // Independence: no two set members adjacent.
  for (Index u = 0; u < g.n; ++u) {
    if (!in_set[u]) continue;
    for (Index v : nb[u])
      if (in_set[v]) return false;
  }
  // Maximality: every non-member has a member neighbour.
  for (Index u = 0; u < g.n; ++u) {
    if (in_set[u]) continue;
    bool covered = false;
    for (Index v : nb[u]) {
      if (in_set[v]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool valid_coloring(const SimpleGraph& g, const std::vector<Index>& color) {
  auto nb = undirected_neighbors(g);
  for (Index u = 0; u < g.n; ++u) {
    if (color[u] == 0) return false;  // colors are 1-based; 0 = uncolored
    for (Index v : nb[u])
      if (v != u && color[u] == color[v]) return false;
  }
  return true;
}

bool valid_maximal_matching(const SimpleGraph& g,
                            const std::vector<Index>& mate) {
  auto nb = undirected_neighbors(g);
  // Consistency: mates are mutual and adjacent.
  for (Index u = 0; u < g.n; ++u) {
    Index m = mate[u];
    if (m == u) continue;
    if (m >= g.n || mate[m] != u) return false;
    if (nb[u].count(m) == 0) return false;
  }
  // Maximality: no edge with both endpoints unmatched.
  for (Index u = 0; u < g.n; ++u) {
    if (mate[u] != u) continue;
    for (Index v : nb[u])
      if (mate[v] == v) return false;
  }
  return true;
}

double conductance(const SimpleGraph& g,
                   const std::vector<std::uint8_t>& in_s) {
  auto nb = undirected_neighbors(g);
  double cut = 0.0, vol_s = 0.0, vol_rest = 0.0;
  for (Index u = 0; u < g.n; ++u) {
    double deg = static_cast<double>(nb[u].size());
    (in_s[u] ? vol_s : vol_rest) += deg;
    if (!in_s[u]) continue;
    for (Index v : nb[u])
      if (!in_s[v]) cut += 1.0;
  }
  double denom = std::min(vol_s, vol_rest);
  if (denom == 0.0) return 1.0;
  return cut / denom;
}

}  // namespace ref
