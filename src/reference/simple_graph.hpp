// Textbook (non-GraphBLAS) graph algorithms used as ground truth when
// validating the LAGraph layer — the algorithm-level counterpart of the
// dense operation mimics. Queue BFS, Dijkstra, Bellman-Ford, union-find
// components, brute-force triangle counting, Brandes betweenness, power
// iteration PageRank, and validity checkers for set-style outputs (MIS,
// coloring, matching).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "graphblas/matrix.hpp"

namespace ref {

using gb::Index;

/// Adjacency-list graph, the representation every textbook uses.
struct SimpleGraph {
  Index n = 0;
  std::vector<std::vector<std::pair<Index, double>>> adj;  // (dst, weight)

  explicit SimpleGraph(Index nodes = 0) : n(nodes), adj(nodes) {}

  void add_edge(Index u, Index v, double w = 1.0) {
    adj[u].emplace_back(v, w);
  }

  /// Build from an adjacency matrix (directed interpretation: A(i,j) is the
  /// edge i -> j).
  template <class T>
  static SimpleGraph from_matrix(const gb::Matrix<T>& a) {
    SimpleGraph g(a.nrows());
    std::vector<Index> r, c;
    std::vector<T> v;
    a.extract_tuples(r, c, v);
    for (std::size_t k = 0; k < r.size(); ++k)
      g.add_edge(r[k], c[k], static_cast<double>(v[k]));
    return g;
  }

  [[nodiscard]] std::size_t nedges() const {
    std::size_t e = 0;
    for (const auto& l : adj) e += l.size();
    return e;
  }
};

inline constexpr std::int64_t kUnreached = -1;

/// Queue BFS: levels[v] = hop distance from source, -1 if unreachable.
std::vector<std::int64_t> bfs_levels(const SimpleGraph& g, Index source);

/// BFS parent validity: parents must form a tree consistent with levels.
bool valid_bfs_parents(const SimpleGraph& g, Index source,
                       const std::vector<std::int64_t>& parent,
                       const std::vector<std::int64_t>& level);

/// Dijkstra single-source shortest paths (non-negative weights).
/// Unreachable = +inf.
std::vector<double> dijkstra(const SimpleGraph& g, Index source);

/// Bellman-Ford (handles negative edges; returns empty on negative cycle).
std::vector<double> bellman_ford(const SimpleGraph& g, Index source);

/// Union-find connected components on the undirected view of g.
/// Returns a representative id per vertex (minimum vertex id in component).
std::vector<Index> connected_components(const SimpleGraph& g);

/// Tarjan strongly connected components (directed). Returns a label per
/// vertex, normalised to the minimum vertex id in each SCC.
std::vector<Index> strongly_connected_components(const SimpleGraph& g);

/// Textbook k-core peeling; coreness per vertex (undirected simple view).
std::vector<std::uint64_t> kcore(const SimpleGraph& g);

/// Brute-force triangle count (g treated as undirected, simple).
std::uint64_t count_triangles(const SimpleGraph& g);

/// Per-edge support counts for k-truss checking: for each undirected edge
/// (u, v), the number of common neighbours.
std::uint64_t ktruss_edge_count(const SimpleGraph& g, std::uint64_t k);

/// Brute-force small-subgraph counts (undirected simple view).
std::uint64_t count_wedges(const SimpleGraph& g);
std::uint64_t count_claws(const SimpleGraph& g);
std::uint64_t count_4cycles(const SimpleGraph& g);
std::uint64_t count_tailed_triangles(const SimpleGraph& g);

/// Power-iteration PageRank on the full dense representation.
std::vector<double> pagerank(const SimpleGraph& g, double damping = 0.85,
                             int iters = 100, double tol = 1e-9);

/// Exact Brandes betweenness centrality (unweighted).
std::vector<double> betweenness(const SimpleGraph& g);

/// Checks that `in_set` is a maximal independent set of the undirected view.
bool valid_mis(const SimpleGraph& g, const std::vector<std::uint8_t>& in_set);

/// Checks a proper vertex coloring (adjacent vertices differ, all colored).
bool valid_coloring(const SimpleGraph& g, const std::vector<Index>& color);

/// Checks a maximal matching given as mate[] (mate[v] == v means unmatched).
bool valid_maximal_matching(const SimpleGraph& g,
                            const std::vector<Index>& mate);

/// Conductance of a vertex set S (undirected view): cut(S) / min(vol(S),
/// vol(V-S)). Used to validate local clustering output quality.
double conductance(const SimpleGraph& g, const std::vector<std::uint8_t>& in_s);

}  // namespace ref
