// apply (unary and index-unary) and select vs the dense mimics.
#include <gtest/gtest.h>

#include "test_common.hpp"

using namespace testutil;
using gb::Index;

class ApplySelectSweep : public ::testing::TestWithParam<int> {};

TEST_P(ApplySelectSweep, ApplyMatchesMimic) {
  std::uint64_t seed = 300 + GetParam() * 41;
  auto u = random_vector(25, 0.5, seed);
  auto du = ref::from_gb(u);
  auto a = random_matrix(8, 8, 0.4, seed + 1);
  auto da = ref::from_gb(a);

  for (auto d : mask_descriptor_sweep()) {
    auto vm = random_vector(25, 0.5, seed + 2);
    auto dvm = ref::from_gb(vm);
    gb::Vector<double> w = random_vector(25, 0.3, seed + 3);
    auto dw = ref::from_gb(w);
    gb::apply(w, vm, gb::no_accum, gb::Ainv{}, u, d);
    ref::apply(dw, &dvm, static_cast<const gb::Plus*>(nullptr), gb::Ainv{}, du,
               d);
    EXPECT_TRUE(ref::equal(dw, w)) << desc_name(d);

    for (bool ta : {false, true}) {
      d.transpose_a = ta;
      auto mm = random_matrix(8, 8, 0.4, seed + 4);
      auto dmm = ref::from_gb(mm);
      gb::Matrix<double> c = random_matrix(8, 8, 0.2, seed + 5);
      auto dc = ref::from_gb(c);
      gb::Plus acc;
      gb::apply(c, mm, acc, gb::Abs{}, a, d);
      ref::apply(dc, &dmm, &acc, gb::Abs{}, da, d);
      EXPECT_TRUE(ref::equal(dc, c)) << desc_name(d);
    }
  }
}

TEST_P(ApplySelectSweep, SelectMatchesMimic) {
  std::uint64_t seed = 700 + GetParam() * 43;
  auto a = random_matrix(9, 9, 0.5, seed);
  auto da = ref::from_gb(a);

  struct Case {
    const char* name;
    std::function<void(gb::Matrix<double>&, const gb::Descriptor&)> run_gb;
    std::function<void(ref::DenseMat<double>&, const gb::Descriptor&)> run_ref;
  };

  for (auto d : mask_descriptor_sweep()) {
    for (bool ta : {false, true}) {
      d.transpose_a = ta;
      // tril / triu / value tests, thunks varied.
      for (std::int64_t k : {-2, 0, 1}) {
        gb::Matrix<double> c(9, 9);
        ref::DenseMat<double> dc(9, 9);
        gb::select(c, gb::no_mask, gb::no_accum, gb::SelTril{}, a, k, d);
        ref::select(dc, static_cast<const ref::DenseMat<bool>*>(nullptr),
                    static_cast<const gb::Plus*>(nullptr), gb::SelTril{}, da, k,
                    d);
        EXPECT_TRUE(ref::equal(dc, c)) << "tril k=" << k << " " << desc_name(d);
      }
      {
        gb::Matrix<double> c(9, 9);
        ref::DenseMat<double> dc(9, 9);
        gb::select(c, gb::no_mask, gb::no_accum, gb::SelValueGt{}, a, 0.5, d);
        ref::select(dc, static_cast<const ref::DenseMat<bool>*>(nullptr),
                    static_cast<const gb::Plus*>(nullptr), gb::SelValueGt{}, da,
                    0.5, d);
        EXPECT_TRUE(ref::equal(dc, c)) << "valuegt " << desc_name(d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApplySelectSweep, ::testing::Range(0, 4));

TEST(Apply, BindScalarOps) {
  gb::Vector<double> u(3);
  u.set_element(0, 2.0);
  u.set_element(2, 5.0);
  gb::Vector<double> w(3);
  gb::apply(w, gb::no_mask, gb::no_accum,
            gb::BindSecond<gb::Times, double>{{}, 10.0}, u);
  EXPECT_EQ(w.extract_element(0).value(), 20.0);
  EXPECT_EQ(w.extract_element(2).value(), 50.0);
}

TEST(Apply, IndexOpRowIndex) {
  gb::Vector<double> u(5);
  u.set_element(1, 9.0);
  u.set_element(4, 9.0);
  gb::Vector<std::int64_t> w(5);
  gb::apply_indexop(w, gb::no_mask, gb::no_accum, gb::RowIndex{}, u,
                    std::int64_t{100});
  EXPECT_EQ(w.extract_element(1).value(), 101);
  EXPECT_EQ(w.extract_element(4).value(), 104);
}

TEST(Apply, MatrixIndexOpSeesCoordinates) {
  gb::Matrix<double> a(3, 4);
  a.set_element(1, 2, 7.0);
  a.set_element(2, 0, 8.0);
  gb::Matrix<std::int64_t> c(3, 4);
  gb::apply_indexop(c, gb::no_mask, gb::no_accum, gb::ColIndex{}, a,
                    std::int64_t{0});
  EXPECT_EQ(c.extract_element(1, 2).value(), 2);
  EXPECT_EQ(c.extract_element(2, 0).value(), 0);
}

TEST(Select, TrilTriuConveniences) {
  auto a = random_matrix(6, 6, 0.8, 99);
  auto l = gb::tril(a, -1);
  auto u = gb::triu(a, 1);
  auto dg = gb::Matrix<double>(6, 6);
  gb::select(dg, gb::no_mask, gb::no_accum, gb::SelDiag{}, a, std::int64_t{0});
  EXPECT_EQ(l.nvals() + u.nvals() + dg.nvals(), a.nvals());
  std::vector<Index> r, c;
  std::vector<double> v;
  l.extract_tuples(r, c, v);
  for (std::size_t k = 0; k < r.size(); ++k) EXPECT_LT(c[k], r[k]);
}

TEST(Select, VectorSelect) {
  gb::Vector<double> u(6);
  for (Index i = 0; i < 6; ++i) u.set_element(i, static_cast<double>(i) - 2.5);
  gb::Vector<double> w(6);
  gb::select(w, gb::no_mask, gb::no_accum, gb::SelValueGt{}, u, 0.0);
  EXPECT_EQ(w.nvals(), 3u);  // 0.5, 1.5, 2.5
  EXPECT_EQ(w.extract_element(3).value(), 0.5);
}
