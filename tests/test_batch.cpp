// Batched multi-source execution suite (the coalescing PR's tentpole
// contract):
//
//   * the multi-source drivers (bfs_level_ms / sssp_bellman_ford_ms /
//     pagerank_personalized_ms) are bit-identical PER ROW to k independent
//     single-source runs — at 1/2/4 OpenMP threads and across sparse/bitmap
//     storage forms — and their checkpoints resume the whole batch
//     deterministically;
//   * the platform coalescing stage groups submit_coalesced requests by key
//     up to batch_max, dispatches a batch as one governed unit, and keeps
//     the per-member submit/poll/wait/cancel contract: a member cancel masks
//     one row and never kills the batch;
//   * the GraphService batch planner de-batches per-client results that
//     match unbatched runs exactly, survives alloc-fault injection on the
//     coalescing submit path, and returns per-row partial results when the
//     batch's governor trips mid-run.
//
// Like test_service.cpp, everything here must be TSan-clean: any data-race
// report is a real contract violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graphblas/graphblas.hpp"
#include "lagraph/checkpoint.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/runner.hpp"
#include "lagraph/serving.hpp"
#include "lagraph/util/generator.hpp"
#include "platform/alloc.hpp"
#include "platform/governor.hpp"
#include "platform/service.hpp"

using gb::Index;
using gb::platform::Governor;
using gb::platform::GovernorScope;
using gb::platform::ScopedFailAfter;
using gb::platform::ScopedTripAfter;
using gb::platform::Service;
using gb::platform::ServicePolicy;
using gb::platform::ServiceStats;
using lagraph::Checkpoint;
using lagraph::Graph;
using lagraph::GraphService;
using lagraph::ServiceJobResult;
using lagraph::StopReason;

namespace {

// Same env priming as the service/runner suites: the ambient byte budget
// must never interfere with these tests.
const bool env_primed = [] {
  ::setenv("LAGRAPH_MEM_BUDGET", "109951162777600", 1);  // 100 TiB
  return true;
}();

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// RAII OpenMP thread-count override (same as the parallel suite).
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) {
#ifdef _OPENMP
    before_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(before_);
#endif
  }

 private:
  int before_ = 1;
};

Graph make_graph(std::uint64_t seed, gb::FormatMode fmt) {
  gb::Matrix<double> a = lagraph::randomize_weights(
      lagraph::erdos_renyi(64, 512, seed), 0.5, 2.0, seed);
  a.set_format(fmt);
  return Graph(std::move(a), lagraph::Kind::directed);
}

template <class T>
std::pair<std::vector<Index>, std::vector<double>> tuples(
    const gb::Vector<T>& v) {
  std::vector<Index> idx;
  std::vector<T> vals;
  v.extract_tuples(idx, vals);
  return {idx, std::vector<double>(vals.begin(), vals.end())};
}

/// Split a (k x n) batched result into per-row (idx, vals) pairs comparable
/// against single-source truth vectors.
template <class T>
std::vector<std::pair<std::vector<Index>, std::vector<double>>> split_rows(
    const gb::Matrix<T>& m, Index k) {
  std::vector<std::pair<std::vector<Index>, std::vector<double>>> rows(
      static_cast<std::size_t>(k));
  std::vector<Index> ri, ci;
  std::vector<T> vi;
  m.extract_tuples(ri, ci, vi);
  for (std::size_t t = 0; t < ri.size(); ++t) {
    auto& row = rows[static_cast<std::size_t>(ri[t])];
    row.first.push_back(ci[t]);
    row.second.push_back(static_cast<double>(vi[t]));
  }
  return rows;
}

}  // namespace

// --- multi-source drivers: per-row bit-identity ------------------------------

TEST(BatchDrivers, BfsMsMatchesSoloRunsAcrossThreadsAndFormats) {
  const std::vector<Index> sources{0, 7, 13, 13, 40};  // duplicates legal
  for (gb::FormatMode fmt : {gb::FormatMode::sparse, gb::FormatMode::bitmap}) {
    Graph g = make_graph(11, fmt);
    std::vector<std::pair<std::vector<Index>, std::vector<double>>> truth;
    for (Index s : sources) {
      truth.push_back(
          tuples(lagraph::bfs(g, s, lagraph::BfsVariant::push).level));
    }
    for (int threads : {1, 2, 4}) {
      ThreadGuard guard(threads);
      auto out = lagraph::bfs_level_ms(g, sources);
      ASSERT_EQ(out.stop, StopReason::none);
      auto rows = split_rows(out.level, static_cast<Index>(sources.size()));
      for (std::size_t r = 0; r < sources.size(); ++r) {
        EXPECT_EQ(rows[r], truth[r])
            << "bfs row " << r << " (source " << sources[r] << ") differs, "
            << threads << " threads, fmt " << static_cast<int>(fmt);
      }
    }
  }
}

TEST(BatchDrivers, SsspMsMatchesSoloRunsAcrossThreadsAndFormats) {
  const std::vector<Index> sources{2, 9, 31, 60};
  for (gb::FormatMode fmt : {gb::FormatMode::sparse, gb::FormatMode::bitmap}) {
    Graph g = make_graph(23, fmt);
    std::vector<std::pair<std::vector<Index>, std::vector<double>>> truth;
    for (Index s : sources) {
      truth.push_back(tuples(lagraph::sssp_bellman_ford(g, s).dist));
    }
    for (int threads : {1, 2, 4}) {
      ThreadGuard guard(threads);
      auto out = lagraph::sssp_bellman_ford_ms(g, sources);
      ASSERT_EQ(out.stop, StopReason::converged);
      auto rows = split_rows(out.dist, static_cast<Index>(sources.size()));
      for (std::size_t r = 0; r < sources.size(); ++r) {
        // Exact equality: min-plus relaxation is order-insensitive and each
        // matrix row reads only its own carried distances.
        EXPECT_EQ(rows[r], truth[r])
            << "sssp row " << r << " (source " << sources[r] << ") differs, "
            << threads << " threads, fmt " << static_cast<int>(fmt);
      }
    }
  }
}

TEST(BatchDrivers, PprMsRowsMatchSingleSourceRuns) {
  const std::vector<Index> sources{0, 5, 17, 42};
  for (gb::FormatMode fmt : {gb::FormatMode::sparse, gb::FormatMode::bitmap}) {
    Graph g = make_graph(37, fmt);
    std::vector<std::pair<std::vector<Index>, std::vector<double>>> truth;
    std::vector<std::int64_t> truth_iters;
    for (Index s : sources) {
      auto solo = lagraph::pagerank_personalized(g, s, 0.85, 1e-9, 100);
      truth.push_back(tuples(solo.rank));
      truth_iters.push_back(solo.iterations);
    }
    for (int threads : {1, 2, 4}) {
      ThreadGuard guard(threads);
      auto out = lagraph::pagerank_personalized_ms(g, sources, 0.85, 1e-9, 100);
      ASSERT_FALSE(lagraph::is_interruption(out.stop));
      ASSERT_EQ(out.iterations.size(), sources.size());
      auto rows = split_rows(out.rank, static_cast<Index>(sources.size()));
      for (std::size_t r = 0; r < sources.size(); ++r) {
        // Per-row freeze-on-convergence keeps every batched row bit-for-bit
        // equal to its solo run: same iteration count, same values.
        EXPECT_EQ(out.iterations[r], truth_iters[r]) << "ppr row " << r;
        EXPECT_EQ(rows[r], truth[r])
            << "ppr row " << r << " (seed " << sources[r] << ") differs, "
            << threads << " threads, fmt " << static_cast<int>(fmt);
      }
    }
  }
}

TEST(BatchDrivers, MsDriversValidateSources) {
  Graph g = make_graph(3, gb::FormatMode::sparse);
  EXPECT_THROW((void)lagraph::bfs_level_ms(g, {}), gb::Error);
  EXPECT_THROW((void)lagraph::bfs_level_ms(g, {999}), gb::Error);
  EXPECT_THROW((void)lagraph::sssp_bellman_ford_ms(g, {}), gb::Error);
  EXPECT_THROW((void)lagraph::sssp_bellman_ford_ms(g, {0, 999}), gb::Error);
  EXPECT_THROW((void)lagraph::pagerank_personalized_ms(g, {}), gb::Error);
  EXPECT_THROW((void)lagraph::pagerank_personalized_ms(g, {999}), gb::Error);
}

// --- multi-source drivers: whole-batch resume determinism --------------------

namespace {

// Same sweep as test_runner's: trip at every sampled poll ordinal, resume
// from the capsule ungoverned, demand the exact uninterrupted result.
template <class Run, class Extract>
void soak_resume_determinism(const char* name, Run&& run, Extract&& extract) {
  const auto base = run(nullptr);
  ASSERT_FALSE(lagraph::is_interruption(base.stop)) << name;
  const auto want = extract(base);

  constexpr std::uint64_t kMaxN = 200000;
  std::uint64_t stride = 1;
  for (std::uint64_t n = 0; n < kMaxN; n += stride) {
    Checkpoint cp;
    bool interrupted = false;
    {
      Governor gov;
      GovernorScope s(&gov);
      ScopedTripAfter trip(n, Governor::Trip::cancel);
      auto part = run(nullptr);
      interrupted = lagraph::is_interruption(part.stop);
      if (interrupted) {
        EXPECT_EQ(part.stop, StopReason::cancelled) << name << " poll " << n;
        cp = std::move(part.checkpoint);
      }
    }
    if (!interrupted) return;  // the whole run fits under this ordinal
    auto resumed = cp.empty() ? run(nullptr) : run(&cp);
    ASSERT_FALSE(lagraph::is_interruption(resumed.stop))
        << name << " resumed run tripped ungoverned, poll " << n;
    EXPECT_EQ(extract(resumed), want)
        << name << ": trip at poll " << n << " + resume differs";
    if (n >= 24) stride = 1 + n / 3;
  }
  ADD_FAILURE() << name << " never completed under poll trips";
}

template <class T>
auto matrix_tuples(const gb::Matrix<T>& m) {
  std::tuple<std::vector<Index>, std::vector<Index>, std::vector<T>> t;
  m.extract_tuples(std::get<0>(t), std::get<1>(t), std::get<2>(t));
  return t;
}

}  // namespace

TEST(BatchResume, BfsMsCheckpointCarriesTheWholeBatch) {
  Graph g(lagraph::cycle_graph(32), lagraph::Kind::undirected);
  const std::vector<Index> sources{0, 9, 20};
  soak_resume_determinism(
      "bfs_level_ms",
      [&](const Checkpoint* cp) {
        return lagraph::bfs_level_ms(g, sources, cp);
      },
      [](const lagraph::BfsMsResult& r) {
        return std::make_pair(matrix_tuples(r.level), r.depth);
      });
}

TEST(BatchResume, SsspMsCheckpointCarriesTheWholeBatch) {
  Graph g(lagraph::cycle_graph(24), lagraph::Kind::undirected);
  const std::vector<Index> sources{0, 5, 11};
  soak_resume_determinism(
      "sssp_bellman_ford_ms",
      [&](const Checkpoint* cp) {
        return lagraph::sssp_bellman_ford_ms(g, sources, cp);
      },
      [](const lagraph::SsspMsResult& r) {
        return std::make_pair(matrix_tuples(r.dist), r.iterations);
      });
}

TEST(BatchResume, PprMsCheckpointCarriesTheWholeBatch) {
  Graph g(lagraph::path_graph(24), lagraph::Kind::undirected);
  const std::vector<Index> sources{0, 8, 15};
  soak_resume_determinism(
      "pagerank_personalized_ms",
      [&](const Checkpoint* cp) {
        return lagraph::pagerank_personalized_ms(g, sources, 0.85, 1e-9, 60,
                                                 cp);
      },
      [](const lagraph::PprMsResult& r) {
        return std::make_tuple(matrix_tuples(r.rank), r.iterations,
                               r.row_stop, r.rounds);
      });
}

// --- platform coalescing stage ----------------------------------------------

TEST(ServiceBatch, CoalescesByKeyUpToBatchMax) {
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 16,
                            .batch_max = 2,
                            .batch_window_us = 1e4});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.submit([&](Governor& gov) {
    entered.store(true);
    while (!release.load() && !gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  std::mutex rec_m;
  std::vector<std::vector<std::uint64_t>> dispatched;  // args per batch run
  auto job = [&](Governor&, const Service::BatchView& view) {
    std::vector<std::uint64_t> args;
    for (std::size_t i = 0; i < view.size(); ++i) args.push_back(view.arg(i));
    std::lock_guard<std::mutex> lk(rec_m);
    dispatched.push_back(std::move(args));
  };

  // Three submissions on one key with batch_max = 2: the first two fill and
  // seal a batch, the third opens a second. Distinct keys never coalesce.
  std::vector<Service::Ticket> tickets;
  tickets.push_back(svc.submit_coalesced("k", 1, nullptr, job));
  tickets.push_back(svc.submit_coalesced("k", 2, nullptr, job));
  tickets.push_back(svc.submit_coalesced("k", 3, nullptr, job));
  tickets.push_back(svc.submit_coalesced("x", 4, nullptr, job));
  tickets.push_back(svc.submit_coalesced("y", 5, nullptr, job));

  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  for (auto& t : tickets) EXPECT_EQ(t.wait(), Service::State::done);

  {
    std::lock_guard<std::mutex> lk(rec_m);
    ASSERT_EQ(dispatched.size(), 4u);
    EXPECT_EQ(dispatched[0], (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(dispatched[1], (std::vector<std::uint64_t>{3}));
    EXPECT_EQ(dispatched[2], (std::vector<std::uint64_t>{4}));
    EXPECT_EQ(dispatched[3], (std::vector<std::uint64_t>{5}));
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 4u);
  EXPECT_EQ(st.batched_requests, 5u);
  EXPECT_EQ(st.submitted, 6u);  // 5 members + the blocker
  EXPECT_EQ(st.completed, 6u);
}

TEST(ServiceBatch, WindowZeroDispatchesImmediately) {
  // A zero window means a batch is mature the instant it opens: the default
  // config pays no coalescing latency even with the stage switched on.
  Service svc(ServicePolicy{.workers = 2,
                            .queue_limit = 16,
                            .batch_max = 8,
                            .batch_window_us = 0});
  std::atomic<int> runs{0};
  auto t = svc.submit_coalesced(
      "k", 7, nullptr,
      [&](Governor&, const Service::BatchView& view) {
        EXPECT_EQ(view.size(), 1u);
        EXPECT_EQ(view.arg(0), 7u);
        runs.fetch_add(1);
      });
  EXPECT_EQ(t.wait(), Service::State::done);
  EXPECT_EQ(runs.load(), 1);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 1u);
}

TEST(ServiceBatch, WindowIsHonouredByIdleWorkers) {
  // A non-zero window is the caller's latency budget for coalescing, and
  // idle workers respect it: two quick submissions against an otherwise
  // idle pool must land in ONE batch, dispatched no earlier than the
  // window. (A full batch would seal early; batch_max = 8 keeps it open.)
  Service svc(ServicePolicy{.workers = 2,
                            .queue_limit = 16,
                            .batch_max = 8,
                            .batch_window_us = 1e5});  // 100 ms
  const auto t_open = std::chrono::steady_clock::now();
  auto t0 = svc.submit_coalesced("k", 1, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  auto t1 = svc.submit_coalesced("k", 2, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  EXPECT_EQ(t0.wait(), Service::State::done);
  EXPECT_EQ(t1.wait(), Service::State::done);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_open)
          .count();
  EXPECT_GE(waited_ms, 80.0);  // dispatched only at maturity (clock fuzz)
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 2u);
}

TEST(ServiceBatch, FullBatchSealsBeforeTheWindowElapses) {
  // Reaching batch_max seals and dispatches without waiting out the window.
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 16,
                            .batch_max = 2,
                            .batch_window_us = 60e6});
  const auto t_open = std::chrono::steady_clock::now();
  auto t0 = svc.submit_coalesced("k", 1, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  auto t1 = svc.submit_coalesced("k", 2, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  EXPECT_EQ(t0.wait(), Service::State::done);
  EXPECT_EQ(t1.wait(), Service::State::done);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t_open)
          .count();
  EXPECT_LT(waited_ms, 10e3);  // nowhere near the 60 s window
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 2u);
}

TEST(ServiceBatch, MemberCancelMasksTheRowNotTheBatch) {
  // batch_max == the number of submissions: the third submit seals the
  // batch, so the test never waits out the (long) window.
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 16,
                            .batch_max = 3,
                            .batch_window_us = 1e6});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.submit([&](Governor& gov) {
    entered.store(true);
    while (!release.load() && !gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  auto p0 = std::make_shared<std::uint64_t>(0);
  auto p1 = std::make_shared<std::uint64_t>(0);
  auto p2 = std::make_shared<std::uint64_t>(0);
  auto job = [](Governor&, const Service::BatchView& view) {
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (view.cancelled(i)) continue;  // masked row: payload untouched
      *static_cast<std::uint64_t*>(view.payload(i)) = view.arg(i) * 10;
    }
  };
  auto t0 = svc.submit_coalesced("k", 1, p0, job);
  auto t1 = svc.submit_coalesced("k", 2, p1, job);
  auto t2 = svc.submit_coalesced("k", 3, p2, job);
  t1.cancel();  // masks row 1 only

  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  EXPECT_EQ(t0.wait(), Service::State::done);
  EXPECT_EQ(t1.wait(), Service::State::cancelled);
  EXPECT_EQ(t2.wait(), Service::State::done);
  EXPECT_EQ(*p0, 10u);
  EXPECT_EQ(*p1, 0u);  // sibling cancel never touched this row's siblings
  EXPECT_EQ(*p2, 30u);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 3u);
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 3u);  // blocker + two live members
}

TEST(ServiceBatch, AllMembersCancelledSkipsDispatch) {
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 16,
                            .batch_max = 2,
                            .batch_window_us = 1e6});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.submit([&](Governor& gov) {
    entered.store(true);
    while (!release.load() && !gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  std::atomic<bool> ran{false};
  auto job = [&](Governor&, const Service::BatchView&) { ran.store(true); };
  auto t0 = svc.submit_coalesced("k", 1, nullptr, job);
  auto t1 = svc.submit_coalesced("k", 2, nullptr, job);
  t0.cancel();
  t1.cancel();
  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  EXPECT_EQ(t0.wait(), Service::State::cancelled);
  EXPECT_EQ(t1.wait(), Service::State::cancelled);
  EXPECT_FALSE(ran.load());
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 0u);
  EXPECT_EQ(st.batched_requests, 0u);
  EXPECT_EQ(st.cancelled, 2u);
}

TEST(ServiceBatch, StopCancelsQueuedBatchMembers) {
  std::atomic<bool> entered{false};
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 16,
                            .batch_max = 4,
                            .batch_window_us = 60e6});
  auto blocker = svc.submit([&](Governor& gov) {
    entered.store(true);
    while (!gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);
  auto t0 = svc.submit_coalesced("k", 1, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  auto t1 = svc.submit_coalesced("k", 2, nullptr,
                                 [](Governor&, const Service::BatchView&) {});
  svc.stop();  // orphaned carrier expands into member cancels
  EXPECT_EQ(t0.wait(), Service::State::cancelled);
  EXPECT_EQ(t1.wait(), Service::State::cancelled);
  // The blocker exits cooperatively when it observes the cancel, so it
  // finishes done; only the never-dispatched members are cancelled.
  EXPECT_EQ(blocker.wait(), Service::State::done);
}

TEST(ServiceBatch, BatchMaxOneDegradesToPlainSubmit) {
  Service svc(ServicePolicy{.workers = 1, .batch_max = 1});
  auto p = std::make_shared<std::uint64_t>(0);
  auto t = svc.submit_coalesced(
      "k", 6, p, [](Governor&, const Service::BatchView& view) {
        ASSERT_EQ(view.size(), 1u);
        EXPECT_FALSE(view.cancelled(0));
        *static_cast<std::uint64_t*>(view.payload(0)) = view.arg(0) + 1;
      });
  EXPECT_EQ(t.wait(), Service::State::done);
  EXPECT_EQ(*p, 7u);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 0u);  // the stage is off: no batch accounting
  EXPECT_EQ(st.batched_requests, 0u);
  EXPECT_EQ(st.submitted, 1u);
}

// --- GraphService batch planner ----------------------------------------------

TEST(GraphServiceBatch, CancelOneRowLeavesSiblingsUntouched) {
  GraphService::Options opts;
  opts.service.workers = 1;
  opts.service.queue_limit = 16;
  opts.service.batch_max = 3;  // the third submit seals the batch
  opts.service.batch_window_us = 1e6;
  GraphService svc(opts);
  svc.publish("g", make_graph(21, gb::FormatMode::sparse));

  Graph same = make_graph(21, gb::FormatMode::sparse);
  std::vector<std::pair<std::vector<Index>, std::vector<double>>> truth;
  for (Index s = 0; s < 3; ++s) {
    truth.push_back(
        tuples(lagraph::bfs(same, s, lagraph::BfsVariant::push).level));
  }

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.core().submit([&](Governor& gov) {
    entered.store(true);
    while (!release.load() && !gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  const std::uint64_t j0 = svc.submit_algorithm("bfs", "g", 0);
  const std::uint64_t j1 = svc.submit_algorithm("bfs", "g", 1);
  const std::uint64_t j2 = svc.submit_algorithm("bfs", "g", 2);
  svc.cancel(j1);
  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);

  const ServiceJobResult& r0 = svc.wait(j0);
  EXPECT_EQ(std::make_pair(r0.idx, r0.vals), truth[0]);
  EXPECT_EQ(r0.batch_size, 2u);  // two live rows shared the kernel run
  const ServiceJobResult& r1 = svc.wait(j1);
  EXPECT_EQ(svc.poll(j1), GraphService::JobState::cancelled);
  EXPECT_EQ(r1.stop, StopReason::cancelled);
  EXPECT_TRUE(r1.idx.empty());  // masked row: payload never written
  const ServiceJobResult& r2 = svc.wait(j2);
  EXPECT_EQ(std::make_pair(r2.idx, r2.vals), truth[2]);
  EXPECT_EQ(r2.batch_size, 2u);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batched_requests, 3u);
  EXPECT_EQ(st.cancelled, 1u);
}

TEST(GraphServiceBatch, GovernorTripMidBatchReturnsPerRowPartials) {
  GraphService::Options opts;
  opts.service.workers = 1;
  opts.service.queue_limit = 16;
  opts.service.batch_max = 3;  // the third submit seals the batch
  opts.service.batch_window_us = 1e6;
  GraphService svc(opts);
  svc.publish("g", make_graph(29, gb::FormatMode::sparse));

  Graph same = make_graph(29, gb::FormatMode::sparse);
  std::vector<std::pair<std::vector<Index>, std::vector<double>>> truth;
  for (Index s = 0; s < 3; ++s) {
    truth.push_back(
        tuples(lagraph::bfs(same, s, lagraph::BfsVariant::push).level));
  }

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.core().submit([&](Governor& gov) {
    entered.store(true);
    while (!release.load() && !gov.cancelled()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  std::vector<std::uint64_t> jobs;
  for (Index s = 0; s < 3; ++s) {
    jobs.push_back(svc.submit_algorithm("bfs", "g", s));
  }
  {
    // Trip the batch's single governor a few polls into the run: the batch
    // job must come back with a consistent PER-ROW partial for every live
    // member — a prefix of each solo run, stamped with the stop code.
    ScopedTripAfter trip(4, Governor::Trip::cancel);
    release.store(true);
    EXPECT_EQ(blocker.wait(), Service::State::done);
    for (std::size_t r = 0; r < jobs.size(); ++r) {
      const ServiceJobResult& res = svc.wait(jobs[r]);
      EXPECT_EQ(res.stop, StopReason::cancelled) << "row " << r;
      EXPECT_EQ(res.batch_size, 3u) << "row " << r;
      // Partial prefix: every level the interrupted batch assigned matches
      // the solo run at the same vertex.
      for (std::size_t t = 0; t < res.idx.size(); ++t) {
        const auto& want = truth[r];
        auto it = std::lower_bound(want.first.begin(), want.first.end(),
                                   res.idx[t]);
        ASSERT_TRUE(it != want.first.end() && *it == res.idx[t])
            << "row " << r << " has an entry the solo run never assigns";
        EXPECT_EQ(res.vals[t],
                  want.second[static_cast<std::size_t>(
                      it - want.first.begin())])
            << "row " << r << " vertex " << res.idx[t];
      }
    }
  }
  svc.quiesce();
}

TEST(GraphServiceBatch, EightClientBatchedSoakIsBitIdenticalToSerial) {
  GraphService::Options opts;
  opts.service.workers = 2;
  opts.service.queue_limit = 1024;
  opts.service.batch_max = 8;
  opts.service.batch_window_us = 2000;
  GraphService svc(opts);
  svc.publish("g", make_graph(33, gb::FormatMode::sparse));

  Graph serial = make_graph(33, gb::FormatMode::sparse);
  const auto pr = tuples(lagraph::pagerank(serial, 0.85, 1e-9, 100).rank);
  std::vector<std::pair<std::vector<Index>, std::vector<double>>> bfs_truth;
  for (Index s = 0; s < 8; ++s) {
    bfs_truth.push_back(tuples(
        lagraph::bfs(serial, s, lagraph::BfsVariant::direction_optimizing)
            .level));
  }

  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        for (int j = 0; j < kJobsPerClient; ++j) {
          if ((c + j) % 2 == 0) {
            const auto& r = svc.wait(svc.submit_algorithm("pagerank", "g", 0));
            if (std::make_pair(r.idx, r.vals) != pr) mismatches.fetch_add(1);
          } else {
            const auto& r = svc.wait(svc.submit_algorithm(
                "bfs", "g", static_cast<std::uint64_t>(c)));
            if (std::make_pair(r.idx, r.vals) != bfs_truth[c])
              mismatches.fetch_add(1);
          }
        }
      } catch (...) {
        mismatches.fetch_add(1000);  // no exception is acceptable here
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, std::uint64_t{kClients * kJobsPerClient});
  EXPECT_EQ(st.completed, st.submitted);
  // Every request flowed through the coalescing stage, whatever the window
  // grouped together.
  EXPECT_EQ(st.batched_requests, st.submitted);
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, st.batched_requests);
  svc.quiesce();
}

TEST(GraphServiceBatch, CoalescingSubmitPathSurvivesAllocFaultInjection) {
  GraphService::Options opts;
  opts.service.workers = 1;
  opts.service.batch_max = 4;
  opts.service.batch_window_us = 0;
  GraphService svc(opts);
  svc.publish("g", make_graph(3, gb::FormatMode::sparse));
  Graph same = make_graph(3, gb::FormatMode::sparse);
  const auto truth =
      tuples(lagraph::bfs(same, 1, lagraph::BfsVariant::push).level);
  svc.quiesce();

  // Park the lone worker so injected failures land on the coalescing submit
  // path only (open/join/seal bookkeeping), never inside a running kernel.
  std::atomic<bool> gate{false};
  auto blocker = svc.core().submit([&](Governor&) {
    while (!gate.load()) sleep_ms(0.2);
  });

  std::uint64_t accepted_job = 0;
  bool accepted = false;
  for (std::uint64_t n = 0; n < 200 && !accepted; ++n) {
    try {
      ScopedFailAfter arm(n);
      accepted_job = svc.submit_algorithm("bfs", "g", 1);
      accepted = true;
    } catch (const std::bad_alloc&) {
      // expected: injected OOM inside submit_coalesced
    }
  }
  ASSERT_TRUE(accepted) << "submit never survived 200 allocations";
  gate.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  const auto& r = svc.wait(accepted_job);
  EXPECT_EQ(std::make_pair(r.idx, r.vals), truth);

  // And the stage stays fully serviceable after the soak.
  const auto& r2 = svc.wait(svc.submit_algorithm("bfs", "g", 1));
  EXPECT_EQ(std::make_pair(r2.idx, r2.vals), truth);
}

TEST(GraphServiceBatch, RoutesComponentAlgorithmsThroughTheRunner) {
  GraphService::Options opts;
  opts.service.workers = 2;
  opts.service.batch_max = 8;  // batching on: cc/scc/coloring stay unbatched
  GraphService svc(opts);
  Graph g(lagraph::erdos_renyi(48, 160, 9), lagraph::Kind::undirected);
  Graph same(lagraph::erdos_renyi(48, 160, 9), lagraph::Kind::undirected);
  svc.publish("g", std::move(g));

  const auto cc_truth = tuples(lagraph::connected_components(same));
  const auto& rc = svc.wait(svc.submit_algorithm("cc", "g", 0));
  EXPECT_EQ(std::make_pair(rc.idx, rc.vals), cc_truth);
  EXPECT_EQ(rc.batch_size, 0u);  // unbatched path

  const auto scc_truth = tuples(lagraph::strongly_connected_components(same));
  const auto& rs = svc.wait(svc.submit_algorithm("scc", "g", 0));
  EXPECT_EQ(std::make_pair(rs.idx, rs.vals), scc_truth);

  const auto col_truth = tuples(lagraph::coloring(same, 7));
  const auto& rk = svc.wait(svc.submit_algorithm("coloring", "g", 7));
  EXPECT_EQ(std::make_pair(rk.idx, rk.vals), col_truth);

  EXPECT_THROW((void)svc.submit_algorithm("bfs", "g", 999), gb::Error);
  svc.quiesce();
}
