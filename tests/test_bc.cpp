// Batched betweenness centrality vs exact Brandes.
#include <gtest/gtest.h>

#include <numeric>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

void expect_bc_matches(const Graph& g, double tol = 1e-9) {
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  std::vector<Index> all(sg.n);
  std::iota(all.begin(), all.end(), Index{0});
  auto got = to_dense_std(betweenness(g, all), 0.0);
  auto want = ref::betweenness(sg);
  ASSERT_EQ(got.size(), want.size());
  for (Index v = 0; v < sg.n; ++v) {
    EXPECT_NEAR(got[v], want[v], tol) << "vertex " << v;
  }
}

}  // namespace

TEST(Betweenness, PathGraph) {
  // On a path 0-1-2-3-4 the middle vertex carries the most load.
  Graph g(path_graph(5), Kind::undirected);
  expect_bc_matches(g);
  std::vector<Index> all = {0, 1, 2, 3, 4};
  auto bc = to_dense_std(betweenness(g, all), 0.0);
  EXPECT_GT(bc[2], bc[1]);
  EXPECT_GT(bc[1], bc[0]);
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
}

TEST(Betweenness, StarGraph) {
  Graph g(star_graph(8), Kind::undirected);
  expect_bc_matches(g);
  std::vector<Index> all(8);
  std::iota(all.begin(), all.end(), Index{0});
  auto bc = to_dense_std(betweenness(g, all), 0.0);
  // Hub mediates all 7*6 ordered leaf pairs.
  EXPECT_NEAR(bc[0], 42.0, 1e-9);
  EXPECT_NEAR(bc[3], 0.0, 1e-12);
}

TEST(Betweenness, CompleteGraphIsZero) {
  Graph g(complete_graph(6), Kind::undirected);
  std::vector<Index> all(6);
  std::iota(all.begin(), all.end(), Index{0});
  auto bc = to_dense_std(betweenness(g, all), 0.0);
  for (double v : bc) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Betweenness, RandomGraphs) {
  expect_bc_matches(Graph(erdos_renyi(40, 150, 31), Kind::undirected), 1e-8);
  expect_bc_matches(Graph(grid2d(5, 5), Kind::undirected), 1e-8);
  expect_bc_matches(Graph(rmat(6, 4, 32), Kind::undirected), 1e-8);
}

TEST(Betweenness, DirectedGraph) {
  gb::Matrix<double> a(5, 5);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(2, 3, 1.0);
  a.set_element(0, 4, 1.0);
  a.set_element(4, 3, 1.0);
  Graph g(std::move(a), Kind::directed);
  expect_bc_matches(g);
}

TEST(Betweenness, PartialSourceBatch) {
  // Betweenness from a subset of sources must equal the reference restricted
  // to those sources.
  Graph g(path_graph(6), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  std::vector<Index> batch = {0, 3};
  auto got = to_dense_std(betweenness(g, batch), 0.0);

  // Reference: run Brandes but only accumulate over the chosen sources. Use
  // the per-source decomposition: bc = sum_s delta_s.
  // For a path this is easy to hand-verify instead:
  // From 0: dependencies delta(v) for interior vertices of 0->k paths.
  // Just cross-check with a full ref run of a graph whose other sources
  // contribute nothing: compare against all-sources run minus the batch
  // complement runs.
  std::vector<Index> rest = {1, 2, 4, 5};
  auto got_rest = to_dense_std(betweenness(g, rest), 0.0);
  std::vector<Index> all = {0, 1, 2, 3, 4, 5};
  auto got_all = to_dense_std(betweenness(g, all), 0.0);
  for (Index v = 0; v < 6; ++v) {
    EXPECT_NEAR(got[v] + got_rest[v], got_all[v], 1e-9);
  }
}

TEST(Betweenness, DisconnectedGraph) {
  gb::Matrix<double> a(6, 6);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(3, 4);
  add(4, 5);
  Graph g(std::move(a), Kind::undirected);
  expect_bc_matches(g);
}
