// BFS (Fig. 2): all three variants must produce textbook levels and a valid
// parent tree, and the direction optimiser must actually switch on
// scale-free inputs.
#include <gtest/gtest.h>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

void expect_bfs_correct(const Graph& g, Index src, BfsVariant variant) {
  auto res = bfs(g, src, variant);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto want = ref::bfs_levels(sg, src);

  auto levels = to_dense_std(res.level, std::int64_t{-1});
  ASSERT_EQ(levels.size(), want.size());
  for (Index v = 0; v < sg.n; ++v) {
    EXPECT_EQ(levels[v], want[v]) << "vertex " << v;
  }
  auto parents = to_dense_std(res.parent, std::int64_t{-1});
  EXPECT_TRUE(ref::valid_bfs_parents(sg, src, parents, want));
}

}  // namespace

class BfsVariants : public ::testing::TestWithParam<BfsVariant> {};

TEST_P(BfsVariants, PathGraph) {
  Graph g(path_graph(10), Kind::undirected);
  expect_bfs_correct(g, 0, GetParam());
  expect_bfs_correct(g, 5, GetParam());
}

TEST_P(BfsVariants, StarGraph) {
  Graph g(star_graph(50), Kind::undirected);
  expect_bfs_correct(g, 0, GetParam());
  expect_bfs_correct(g, 17, GetParam());
}

TEST_P(BfsVariants, DisconnectedGraph) {
  gb::Matrix<double> a(6, 6);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 0, 1.0);
  a.set_element(3, 4, 1.0);
  a.set_element(4, 3, 1.0);
  Graph g(std::move(a), Kind::undirected);
  auto res = bfs(g, 0, GetParam());
  EXPECT_EQ(res.level.nvals(), 2u);  // only {0, 1} reached
  EXPECT_FALSE(res.level.extract_element(3).has_value());
  expect_bfs_correct(g, 0, GetParam());
}

TEST_P(BfsVariants, DirectedGraph) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(2, 3, 1.0);
  a.set_element(3, 0, 1.0);  // cycle
  Graph g(std::move(a), Kind::directed);
  expect_bfs_correct(g, 2, GetParam());
}

TEST_P(BfsVariants, RmatGraph) {
  Graph g(rmat(9, 8, 3), Kind::undirected);
  expect_bfs_correct(g, 0, GetParam());
  expect_bfs_correct(g, 100, GetParam());
}

TEST_P(BfsVariants, GridGraph) {
  Graph g(grid2d(12, 12), Kind::undirected);
  expect_bfs_correct(g, 0, GetParam());
  expect_bfs_correct(g, 77, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BfsVariants,
                         ::testing::Values(BfsVariant::push, BfsVariant::pull,
                                           BfsVariant::direction_optimizing));

TEST(Bfs, SingleVertexSourceOnly) {
  gb::Matrix<double> a(1, 1);
  Graph g(std::move(a), Kind::undirected);
  auto res = bfs(g, 0);
  EXPECT_EQ(res.level.extract_element(0).value(), 0);
  EXPECT_EQ(res.parent.extract_element(0).value(), 0);
  EXPECT_EQ(res.depth, 1);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  Graph g(path_graph(4), Kind::undirected);
  EXPECT_THROW(bfs(g, 4), gb::Error);
}

TEST(Bfs, DirectionOptimizerSwitchesOnScaleFree) {
  // On a dense-frontier graph (star from the hub), DO must pull at least
  // once; on a path it should stay push the whole way.
  Graph star(star_graph(2000), Kind::undirected);
  auto res = bfs(star, 0, BfsVariant::direction_optimizing);
  bool pulled = false;
  for (auto d : res.directions) pulled |= (d == gb::MxvMethod::pull);
  EXPECT_TRUE(pulled);

  Graph path(path_graph(200), Kind::undirected);
  auto res2 = bfs(path, 0, BfsVariant::direction_optimizing);
  for (auto d : res2.directions) EXPECT_EQ(d, gb::MxvMethod::push);
}

TEST(Bfs, DepthMatchesEccentricity) {
  Graph g(path_graph(16), Kind::undirected);
  auto res = bfs(g, 0);
  EXPECT_EQ(res.depth, 16);  // levels 0..15
  auto res2 = bfs(g, 8);
  EXPECT_EQ(res2.depth, 9);  // max level 8 (vertex 0 or 15)
}

TEST(Bfs, ParentCarriesMinimumIdWithMinFirst) {
  // Vertex 3 reachable from both 0 and 1 at the same level: min_first must
  // record parent 0 deterministically... (0 and 1 are both sources' children)
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);
  a.set_element(0, 2, 1.0);
  a.set_element(1, 3, 1.0);
  a.set_element(2, 3, 1.0);
  Graph g(std::move(a), Kind::directed);
  auto res = bfs(g, 0);
  EXPECT_EQ(res.parent.extract_element(3).value(), 1);  // min(1, 2)
}
