// Maximum bipartite matching vs Kuhn's algorithm, and collaborative
// filtering on synthetic low-rank ratings.
#include <gtest/gtest.h>

#include <random>

#include "lagraph/lagraph_bipartite.hpp"
#include "lagraph/util/generator.hpp"

using gb::Index;

namespace {

/// Kuhn's augmenting-path maximum matching (textbook DFS) as the oracle.
class Kuhn {
 public:
  explicit Kuhn(const gb::Matrix<double>& a)
      : nl_(a.nrows()), nr_(a.ncols()), adj_(nl_) {
    std::vector<Index> r, c;
    std::vector<double> v;
    a.extract_tuples(r, c, v);
    for (std::size_t k = 0; k < r.size(); ++k) adj_[r[k]].push_back(c[k]);
  }

  std::uint64_t solve() {
    mate_r_.assign(nr_, nl_);  // nl_ = unmatched sentinel
    std::uint64_t size = 0;
    for (Index u = 0; u < nl_; ++u) {
      seen_.assign(nr_, false);
      if (try_augment(u)) ++size;
    }
    return size;
  }

 private:
  bool try_augment(Index u) {
    for (Index v : adj_[u]) {
      if (seen_[v]) continue;
      seen_[v] = true;
      if (mate_r_[v] == nl_ || try_augment(mate_r_[v])) {
        mate_r_[v] = u;
        return true;
      }
    }
    return false;
  }

  Index nl_, nr_;
  std::vector<std::vector<Index>> adj_;
  std::vector<Index> mate_r_;
  std::vector<bool> seen_;
};

/// Structural validity: mates are mutual and lie on actual edges.
void expect_valid_matching(const gb::Matrix<double>& a,
                           const lagraph::BipartiteMatching& m) {
  std::vector<Index> li;
  std::vector<std::uint64_t> lv;
  m.mate_left.extract_tuples(li, lv);
  EXPECT_EQ(li.size(), m.size);
  for (std::size_t k = 0; k < li.size(); ++k) {
    EXPECT_TRUE(a.extract_element(li[k], lv[k]).has_value())
        << li[k] << "-" << lv[k] << " is not an edge";
    auto back = m.mate_right.extract_element(lv[k]);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, li[k]);
  }
  EXPECT_EQ(m.mate_right.nvals(), m.size);
}

gb::Matrix<double> random_bipartite(Index nl, Index nr, Index m,
                                    std::uint64_t seed) {
  return lagraph::random_matrix(nl, nr, m, seed);
}

}  // namespace

TEST(BipartiteMatching, PerfectOnCompleteBipartite) {
  const Index n = 6;
  gb::Matrix<double> a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) a.set_element(i, j, 1.0);
  auto m = lagraph::maximum_bipartite_matching(a);
  EXPECT_EQ(m.size, n);
  expect_valid_matching(a, m);
}

TEST(BipartiteMatching, KnownHallViolator) {
  // Three left vertices all pointing only at right vertex 0: max matching 1.
  gb::Matrix<double> a(3, 3);
  for (Index i = 0; i < 3; ++i) a.set_element(i, 0, 1.0);
  auto m = lagraph::maximum_bipartite_matching(a);
  EXPECT_EQ(m.size, 1u);
  expect_valid_matching(a, m);
}

TEST(BipartiteMatching, AugmentingPathRequired) {
  // The classic case greedy fails: 0-{0,1}, 1-{0}. Greedy may match 0-0
  // and strand 1; the augmenting path fixes it to size 2.
  gb::Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 0, 1.0);
  auto m = lagraph::maximum_bipartite_matching(a);
  EXPECT_EQ(m.size, 2u);
  expect_valid_matching(a, m);
}

TEST(BipartiteMatching, EmptyAndRectangular) {
  gb::Matrix<double> empty(4, 7);
  auto m0 = lagraph::maximum_bipartite_matching(empty);
  EXPECT_EQ(m0.size, 0u);

  auto wide = random_bipartite(3, 20, 25, 5);
  auto m1 = lagraph::maximum_bipartite_matching(wide);
  EXPECT_LE(m1.size, 3u);
  expect_valid_matching(wide, m1);
}

TEST(BipartiteMatching, MatchesKuhnOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto a = random_bipartite(25, 25, 80 + seed * 13, seed);
    auto m = lagraph::maximum_bipartite_matching(a);
    EXPECT_EQ(m.size, Kuhn(a).solve()) << "seed " << seed;
    expect_valid_matching(a, m);
  }
  // Sparse regime with unmatched vertices on both sides.
  for (std::uint64_t seed : {7u, 8u}) {
    auto a = random_bipartite(40, 30, 35, seed);
    auto m = lagraph::maximum_bipartite_matching(a);
    EXPECT_EQ(m.size, Kuhn(a).solve()) << "seed " << seed;
    expect_valid_matching(a, m);
  }
}

// --- collaborative filtering ---------------------------------------------

namespace {

/// Synthetic low-rank ratings: R = P* Q* sampled on a random pattern.
gb::Matrix<double> synthetic_ratings(Index nu, Index ni, Index rank,
                                     Index nnz, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> f(0.2, 1.0);
  std::vector<std::vector<double>> p(nu, std::vector<double>(rank));
  std::vector<std::vector<double>> q(rank, std::vector<double>(ni));
  for (auto& row : p)
    for (auto& x : row) x = f(rng);
  for (auto& row : q)
    for (auto& x : row) x = f(rng);

  std::uniform_int_distribution<Index> pu(0, nu - 1), pi(0, ni - 1);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index k = 0; k < nnz; ++k) {
    Index u = pu(rng), i = pi(rng);
    double val = 0.0;
    for (Index d = 0; d < rank; ++d) val += p[u][d] * q[d][i];
    r.push_back(u);
    c.push_back(i);
    v.push_back(val);
  }
  gb::Matrix<double> m(nu, ni);
  m.build(r, c, v, gb::Second{});
  return m;
}

}  // namespace

TEST(CollaborativeFiltering, RecoversLowRankStructure) {
  auto ratings = synthetic_ratings(30, 25, 3, 300, 11);
  auto before =
      lagraph::collaborative_filtering(ratings, 3, 0.0, 0.0, 0, 13);
  auto after =
      lagraph::collaborative_filtering(ratings, 3, 0.02, 0.001, 200, 13);
  EXPECT_LT(after.rmse, before.rmse * 0.2);  // at least 5x RMSE reduction
  EXPECT_LT(after.rmse, 0.25);
  EXPECT_EQ(after.epochs, 200);
}

TEST(CollaborativeFiltering, PredictionsApproachRatings) {
  auto ratings = synthetic_ratings(20, 20, 2, 160, 21);
  auto model = lagraph::collaborative_filtering(ratings, 2, 0.03, 0.0005, 300,
                                                22);
  // Reconstruct on the pattern and compare a few entries.
  gb::Matrix<double> pred(20, 20);
  gb::mxm(pred, ratings, gb::no_accum, gb::plus_times<double>(), model.p,
          model.q, gb::desc_s);
  std::vector<Index> r, c;
  std::vector<double> v;
  ratings.extract_tuples(r, c, v);
  double worst = 0.0;
  for (std::size_t k = 0; k < v.size(); ++k) {
    double e = std::abs(pred.extract_element(r[k], c[k]).value() - v[k]);
    worst = std::max(worst, e);
  }
  EXPECT_LT(worst, 0.6);
}

TEST(CollaborativeFiltering, Validation) {
  gb::Matrix<double> empty(5, 5);
  EXPECT_THROW(lagraph::collaborative_filtering(empty, 2, 0.01, 0.001, 5),
               gb::Error);
  auto ratings = synthetic_ratings(5, 5, 2, 10, 1);
  EXPECT_THROW(lagraph::collaborative_filtering(ratings, 0, 0.01, 0.001, 5),
               gb::Error);
}
