// The C API front end (§II-B architecture): error-code mapping, object
// lifetime, operations — culminating in the paper's Fig. 2(d): the
// level-BFS written verbatim against the C API, validated against both the
// C++ LAGraph implementation and the textbook reference.
#include <gtest/gtest.h>

#include "capi/capi_internal.hpp"
#include "capi/graphblas_c.h"
#include "graphblas/validate.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

TEST(CApi, LifetimeAndElements) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 4, 5), GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Matrix_nrows(&n, a), GrB_SUCCESS);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(GrB_Matrix_ncols(&n, a), GrB_SUCCESS);
  EXPECT_EQ(n, 5u);

  EXPECT_EQ(GrB_Matrix_setElement_FP64(a, 2.5, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&n, a), GrB_SUCCESS);
  EXPECT_EQ(n, 1u);
  double x = 0.0;
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(x, 2.5);
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a, 0, 0), GrB_NO_VALUE);
  EXPECT_EQ(GrB_Matrix_removeElement(a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&n, a), GrB_SUCCESS);
  EXPECT_EQ(n, 0u);

  EXPECT_EQ(GrB_Matrix_free(&a), GrB_SUCCESS);
  EXPECT_EQ(a, nullptr);
}

TEST(CApi, ErrorCodeMapping) {
  // API errors: explicit front-end checks.
  EXPECT_EQ(GrB_Matrix_new(nullptr, 2, 2), GrB_NULL_POINTER);

  // Execution errors: back-end exceptions mapped by the try/catch wrapper.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 2, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_setElement_FP64(a, 1.0, 5, 0), GrB_INVALID_INDEX);

  GrB_Matrix b = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&b, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 2, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, nullptr),
            GrB_DIMENSION_MISMATCH);
  GrB_Matrix_free(&a);
  GrB_Matrix_free(&b);
  GrB_Matrix_free(&c);
}

TEST(CApi, BuildAndExtractTuples) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 3, 3), GrB_SUCCESS);
  GrB_Index rows[] = {0, 1, 0};
  GrB_Index cols[] = {1, 2, 1};
  double vals[] = {1.0, 2.0, 3.0};
  ASSERT_EQ(GrB_Matrix_build_FP64(a, rows, cols, vals, 3, GrB_PLUS_FP64),
            GrB_SUCCESS);
  GrB_Index n = 0;
  GrB_Matrix_nvals(&n, a);
  EXPECT_EQ(n, 2u);  // duplicate (0,1) combined

  GrB_Index out_r[4], out_c[4];
  double out_v[4];
  GrB_Index cap = 1;
  EXPECT_EQ(GrB_Matrix_extractTuples_FP64(out_r, out_c, out_v, &cap, a),
            GrB_INSUFFICIENT_SPACE);
  cap = 4;
  ASSERT_EQ(GrB_Matrix_extractTuples_FP64(out_r, out_c, out_v, &cap, a),
            GrB_SUCCESS);
  EXPECT_EQ(cap, 2u);
  EXPECT_EQ(out_v[0], 4.0);  // 1 + 3
  GrB_Matrix_free(&a);
}

TEST(CApi, MxmMatchesCppLayer) {
  auto rnd = lagraph::random_matrix(8, 8, 20, 5);
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 8, 8), GrB_SUCCESS);
  std::vector<gb::Index> r, cc;
  std::vector<double> v;
  rnd.extract_tuples(r, cc, v);
  ASSERT_EQ(GrB_Matrix_build_FP64(a, r.data(), cc.data(), v.data(), r.size(),
                                  GrB_SECOND_FP64),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, nullptr),
            GrB_SUCCESS);

  gb::Matrix<double> expect(8, 8);
  gb::mxm(expect, gb::no_mask, gb::no_accum, gb::plus_times<double>(), rnd,
          rnd);
  std::vector<gb::Index> er, ec;
  std::vector<double> ev;
  expect.extract_tuples(er, ec, ev);

  GrB_Index cap = 64;
  std::vector<GrB_Index> gr(64), gc(64);
  std::vector<double> gv(64);
  ASSERT_EQ(
      GrB_Matrix_extractTuples_FP64(gr.data(), gc.data(), gv.data(), &cap, c),
      GrB_SUCCESS);
  ASSERT_EQ(cap, er.size());
  for (std::size_t k = 0; k < cap; ++k) {
    EXPECT_EQ(gr[k], er[k]);
    EXPECT_EQ(gc[k], ec[k]);
    EXPECT_EQ(gv[k], ev[k]);
  }
  GrB_Matrix_free(&a);
  GrB_Matrix_free(&c);
}

TEST(CApi, DescriptorSettings) {
  GrB_Descriptor d = nullptr;
  ASSERT_EQ(GrB_Descriptor_new(&d), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_OUTP, GrB_REPLACE), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_MASK, GrB_COMP_STRUCTURE), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_INP0, GrB_TRAN), GrB_SUCCESS);
  EXPECT_EQ(GrB_Descriptor_set(d, GrB_OUTP, GrB_TRAN), GrB_INVALID_VALUE);
  GrB_Descriptor_free(&d);
}

// --- Fig. 2(d): the paper's C API BFS, transcribed ---------------------------

namespace {

/// The level-BFS of Fig. 2(d): levels[frontier] = depth;
/// frontier<¬levels,replace> = graph' lor.land frontier.
GrB_Info c_api_bfs(GrB_Matrix graph, GrB_Vector frontier, GrB_Vector* levels) {
  GrB_Index n, nvals;
  GrB_Matrix_nrows(&n, graph);
  GrB_Vector_nvals(&nvals, frontier);

  GrB_Descriptor desc_tran_scmp_replace;
  GrB_Descriptor_new(&desc_tran_scmp_replace);
  GrB_Descriptor_set(desc_tran_scmp_replace, GrB_INP0, GrB_TRAN);
  GrB_Descriptor_set(desc_tran_scmp_replace, GrB_MASK, GrB_COMP_STRUCTURE);
  GrB_Descriptor_set(desc_tran_scmp_replace, GrB_OUTP, GrB_REPLACE);
  GrB_Descriptor desc_struct;
  GrB_Descriptor_new(&desc_struct);
  GrB_Descriptor_set(desc_struct, GrB_MASK, GrB_STRUCTURE);

  GrB_Index depth = 0;
  while (nvals > 0) {
    ++depth;
    GrB_Vector_assign_FP64(*levels, frontier, GrB_NULL_ACCUM,
                           static_cast<double>(depth), GrB_ALL, n,
                           desc_struct);
    GrB_mxv(frontier, *levels, GrB_NULL_ACCUM, GrB_LOR_LAND_SEMIRING, graph,
            frontier, desc_tran_scmp_replace);
    GrB_Vector_nvals(&nvals, frontier);
  }
  GrB_Descriptor_free(&desc_tran_scmp_replace);
  GrB_Descriptor_free(&desc_struct);
  return GrB_SUCCESS;
}

}  // namespace

TEST(CApi, Fig2dBfsMatchesReference) {
  auto adj = lagraph::rmat(8, 6, 44);
  auto sg = ref::SimpleGraph::from_matrix(adj);
  const gb::Index n = adj.nrows();

  GrB_Matrix graph = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&graph, n, n), GrB_SUCCESS);
  std::vector<gb::Index> r, c;
  std::vector<double> v;
  adj.extract_tuples(r, c, v);
  ASSERT_EQ(GrB_Matrix_build_FP64(graph, r.data(), c.data(), v.data(),
                                  r.size(), GrB_SECOND_FP64),
            GrB_SUCCESS);

  // Pick a source inside the giant component.
  gb::Index source = 0;
  {
    std::int64_t best = -1;
    for (gb::Index u = 0; u < n; ++u) {
      auto d = static_cast<std::int64_t>(sg.adj[u].size());
      if (d > best) {
        best = d;
        source = u;
      }
    }
  }

  GrB_Vector frontier = nullptr, levels = nullptr;
  ASSERT_EQ(GrB_Vector_new(&frontier, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&levels, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement_FP64(frontier, 1.0, source), GrB_SUCCESS);

  ASSERT_EQ(c_api_bfs(graph, frontier, &levels), GrB_SUCCESS);

  auto want = ref::bfs_levels(sg, source);
  for (gb::Index u = 0; u < n; ++u) {
    double lvl = 0.0;
    GrB_Info info = GrB_Vector_extractElement_FP64(&lvl, levels, u);
    if (want[u] == ref::kUnreached) {
      EXPECT_EQ(info, GrB_NO_VALUE) << "vertex " << u;
    } else {
      ASSERT_EQ(info, GrB_SUCCESS) << "vertex " << u;
      // Fig. 2(d) levels start at 1 for the source.
      EXPECT_EQ(static_cast<std::int64_t>(lvl), want[u] + 1) << "vertex " << u;
    }
  }
  GrB_Matrix_free(&graph);
  GrB_Vector_free(&frontier);
  GrB_Vector_free(&levels);
}

TEST(CApi, ReduceAndApply) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, 5), GrB_SUCCESS);
  GrB_Vector_setElement_FP64(v, -3.0, 1);
  GrB_Vector_setElement_FP64(v, 4.0, 3);

  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_apply(w, nullptr, GrB_NULL_ACCUM, GrB_ABS_FP64, v,
                             nullptr),
            GrB_SUCCESS);
  double total = 0.0;
  ASSERT_EQ(GrB_Vector_reduce_FP64(&total, GrB_PLUS_MONOID_FP64, w),
            GrB_SUCCESS);
  EXPECT_EQ(total, 7.0);

  double mx = 0.0;
  ASSERT_EQ(GrB_Vector_reduce_FP64(&mx, GrB_MAX_MONOID_FP64, v), GrB_SUCCESS);
  EXPECT_EQ(mx, 4.0);
  GrB_Vector_free(&v);
  GrB_Vector_free(&w);
}

TEST(CApi, TransposeExtractEwise) {
  GrB_Matrix a = nullptr, t = nullptr, s = nullptr, e = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 4, 4), GrB_SUCCESS);
  GrB_Matrix_setElement_FP64(a, 1.0, 0, 2);
  GrB_Matrix_setElement_FP64(a, 2.0, 3, 1);

  // Transpose.
  ASSERT_EQ(GrB_Matrix_new(&t, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_transpose(t, nullptr, GrB_NULL_ACCUM, a, nullptr),
            GrB_SUCCESS);
  double x = 0.0;
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, t, 2, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 1.0);

  // Sub-matrix extract with GrB_ALL rows.
  GrB_Index cols[] = {2, 1};
  ASSERT_EQ(GrB_Matrix_new(&s, 4, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_extract(s, nullptr, GrB_NULL_ACCUM, a, GrB_ALL, 4,
                               cols, 2, nullptr),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, s, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 1.0);  // a(0,2) landed at (0,0)
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, s, 3, 1), GrB_SUCCESS);
  EXPECT_EQ(x, 2.0);

  // eWiseAdd with itself doubles values on the union pattern.
  ASSERT_EQ(GrB_Matrix_new(&e, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_eWiseAdd(e, nullptr, GrB_NULL_ACCUM, GrB_PLUS_FP64, a,
                                a, nullptr),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, e, 3, 1), GrB_SUCCESS);
  EXPECT_EQ(x, 4.0);
  // eWiseMult over the intersection.
  ASSERT_EQ(GrB_Matrix_eWiseMult(e, nullptr, GrB_NULL_ACCUM, GrB_TIMES_FP64,
                                 a, a, nullptr),
            GrB_SUCCESS);
  GrB_Index nv = 0;
  GrB_Matrix_nvals(&nv, e);
  EXPECT_EQ(nv, 2u);

  GrB_Matrix_free(&a);
  GrB_Matrix_free(&t);
  GrB_Matrix_free(&s);
  GrB_Matrix_free(&e);
}

TEST(CApi, ReduceVectorAndVectorOps) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 3, 3), GrB_SUCCESS);
  GrB_Matrix_setElement_FP64(a, 1.0, 0, 0);
  GrB_Matrix_setElement_FP64(a, 2.0, 0, 2);
  GrB_Matrix_setElement_FP64(a, 5.0, 2, 1);

  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_reduce_Vector(w, nullptr, GrB_NULL_ACCUM,
                                     GrB_PLUS_MONOID_FP64, a, nullptr),
            GrB_SUCCESS);
  double x = 0.0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 3.0);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 1), GrB_NO_VALUE);

  // Vector eWise ops and build.
  GrB_Vector u = nullptr, v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, 3), GrB_SUCCESS);
  GrB_Index idx[] = {0, 1};
  double vals[] = {2.0, 3.0};
  ASSERT_EQ(GrB_Vector_build_FP64(u, idx, vals, 2, GrB_PLUS_FP64),
            GrB_SUCCESS);
  GrB_Vector_setElement_FP64(v, 10.0, 1);
  GrB_Vector ew = nullptr;
  ASSERT_EQ(GrB_Vector_new(&ew, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_eWiseMult(ew, nullptr, GrB_NULL_ACCUM, GrB_TIMES_FP64,
                                 u, v, nullptr),
            GrB_SUCCESS);
  GrB_Index nv = 0;
  GrB_Vector_nvals(&nv, ew);
  EXPECT_EQ(nv, 1u);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, ew, 1), GrB_SUCCESS);
  EXPECT_EQ(x, 30.0);

  GrB_Matrix_free(&a);
  GrB_Vector_free(&w);
  GrB_Vector_free(&u);
  GrB_Vector_free(&v);
  GrB_Vector_free(&ew);
}

TEST(CApiError, NullPointerPaths) {
  // Uninitialized (null) handles are API errors detected before dispatch.
  GrB_Index n = 0;
  double x = 0.0;
  EXPECT_EQ(GrB_Matrix_nrows(&n, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Matrix_nrows(nullptr, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Vector_size(&n, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, nullptr, 0, 0),
            GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Vector_setElement_FP64(nullptr, 1.0, 0), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Matrix_error(nullptr, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Vector_error(nullptr, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Matrix_check(nullptr, GxB_CHECK_FULL), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Vector_check(nullptr, GxB_CHECK_FULL), GrB_NULL_POINTER);

  const char* msg = nullptr;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 2, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_error(&msg, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Matrix_error(nullptr, a), GrB_NULL_POINTER);
  GrB_Matrix_free(&a);
}

TEST(CApiError, MatrixErrorRecordsLastFailure) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, 2, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 3, 3), GrB_SUCCESS);

  // A fresh object reports an empty message.
  const char* msg = nullptr;
  ASSERT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_STREQ(msg, "");

  // The error is recorded on the output object of the failing call.
  ASSERT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, nullptr),
            GrB_DIMENSION_MISMATCH);
  ASSERT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(std::string(msg).find("dimension"), std::string::npos) << msg;

  // A subsequent successful call on the same object clears the message.
  ASSERT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, nullptr),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  EXPECT_STREQ(msg, "");

  GrB_Matrix_free(&a);
  GrB_Matrix_free(&b);
  GrB_Matrix_free(&c);
}

TEST(CApiError, VectorErrorRecordsLastFailure) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, 4), GrB_SUCCESS);

  ASSERT_EQ(GrB_Vector_setElement_FP64(v, 1.0, 99), GrB_INVALID_INDEX);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_Vector_error(&msg, v), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(std::string(msg).find("invalid_index"), std::string::npos) << msg;

  ASSERT_EQ(GrB_Vector_setElement_FP64(v, 1.0, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_error(&msg, v), GrB_SUCCESS);
  EXPECT_STREQ(msg, "");
  GrB_Vector_free(&v);
}

TEST(CApiError, ChecksPassOnHealthyObjects) {
  GrB_Matrix a = nullptr;
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, 4), GrB_SUCCESS);
  GrB_Matrix_setElement_FP64(a, 1.5, 0, 3);
  GrB_Matrix_setElement_FP64(a, -2.0, 2, 1);
  GrB_Vector_setElement_FP64(v, 7.0, 1);

  // Both levels, both with pending work and after wait.
  EXPECT_EQ(GxB_Matrix_check(a, GxB_CHECK_QUICK), GrB_SUCCESS);
  EXPECT_EQ(GxB_Matrix_check(a, GxB_CHECK_FULL), GrB_SUCCESS);
  EXPECT_EQ(GxB_Vector_check(v, GxB_CHECK_QUICK), GrB_SUCCESS);
  EXPECT_EQ(GxB_Vector_check(v, GxB_CHECK_FULL), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_wait(a), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_wait(v), GrB_SUCCESS);
  EXPECT_EQ(GxB_Matrix_check(a, GxB_CHECK_FULL), GrB_SUCCESS);
  EXPECT_EQ(GxB_Vector_check(v, GxB_CHECK_FULL), GrB_SUCCESS);

  GrB_Matrix_free(&a);
  GrB_Vector_free(&v);
}

TEST(CApi, AccumAndMaskedAssign) {
  GrB_Vector w = nullptr, mask = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&mask, 4), GrB_SUCCESS);
  GrB_Vector_setElement_FP64(w, 10.0, 0);
  GrB_Vector_setElement_FP64(mask, 1.0, 0);
  GrB_Vector_setElement_FP64(mask, 1.0, 2);

  // w<mask> += 5 everywhere.
  ASSERT_EQ(GrB_Vector_assign_FP64(w, mask, GrB_PLUS_FP64, 5.0, GrB_ALL, 4,
                                   nullptr),
            GrB_SUCCESS);
  double x = 0.0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 15.0);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 2), GrB_SUCCESS);
  EXPECT_EQ(x, 5.0);
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 1), GrB_NO_VALUE);
  GrB_Vector_free(&w);
  GrB_Vector_free(&mask);
}

// ---------------------------------------------------------------------------
// Per-object error attribution (C API §4.5): when an *input* object is
// structurally invalid, the failing call must record its message on that
// object — not on the output the call happens to name first. These tests
// hand-corrupt objects through the opaque handle (white-box, via
// capi_internal.hpp + DebugAccess) with header-detectable, repairable
// mutations.

TEST(CApiError, CorruptMaskRecordsErrorOnMask) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr, mask = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&mask, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(a, 1.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(b, 2.0, 1, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(mask, 1.0, 0, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_wait(mask), GrB_SUCCESS);

  // Header-detectable corruption: an index entry with no matching value.
  auto& ms = gb::DebugAccess<double>::store(mask->m);
  ms.i.push_back(0);

  EXPECT_EQ(GrB_mxm(c, mask, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, nullptr),
            GrB_INVALID_OBJECT);

  // The message lands on the MASK, the offending object...
  const char* msg = nullptr;
  ASSERT_EQ(GrB_Matrix_error(&msg, mask), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(std::string(msg).find("index and value array sizes differ"),
            std::string::npos)
      << msg;
  // ...and the output, which never ran, is untouched.
  ASSERT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  EXPECT_STREQ(msg, "");

  // Repair the mask; the same call now goes through.
  ms.i.pop_back();
  EXPECT_EQ(GrB_mxm(c, mask, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, nullptr),
            GrB_SUCCESS);

  GrB_Matrix_free(&a);
  GrB_Matrix_free(&b);
  GrB_Matrix_free(&c);
  GrB_Matrix_free(&mask);
}

TEST(CApiError, CorruptOperandRecordsErrorOnOperand) {
  GrB_Matrix a = nullptr;
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&u, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(a, 1.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement_FP64(u, 3.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_wait(u), GrB_SUCCESS);

  // Corrupt the vector operand: sparse index array outgrows the values.
  auto& ind = gb::DebugAccess<double>::ind(u->v);
  const bool was_sparse = !ind.empty();
  if (was_sparse) {
    ind.push_back(0);
  } else {
    gb::DebugAccess<double>::dpresent(u->v).push_back(1);
  }

  EXPECT_EQ(GrB_mxv(w, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, u, nullptr),
            GrB_INVALID_OBJECT);

  const char* msg = nullptr;
  ASSERT_EQ(GrB_Vector_error(&msg, u), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_STRNE(msg, "");  // the operand carries the report
  ASSERT_EQ(GrB_Vector_error(&msg, w), GrB_SUCCESS);
  EXPECT_STREQ(msg, "");  // the output does not

  // Repair; the operation succeeds again.
  if (was_sparse) {
    ind.pop_back();
  } else {
    gb::DebugAccess<double>::dpresent(u->v).pop_back();
  }
  EXPECT_EQ(GrB_mxv(w, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, u, nullptr),
            GrB_SUCCESS);
  double x = 0.0;
  EXPECT_EQ(GrB_Vector_extractElement_FP64(&x, w, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 3.0);

  GrB_Matrix_free(&a);
  GrB_Vector_free(&u);
  GrB_Vector_free(&w);
}

TEST(CApiError, CorruptOutputCaughtBeforeDispatch) {
  // The output object is validated too: a corrupt C must fail cleanly with
  // the message on C rather than crash inside a kernel.
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 2, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 2, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(c, 1.0, 0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_wait(c), GrB_SUCCESS);

  auto& cs = gb::DebugAccess<double>::store(c->m);
  cs.i.push_back(1);

  EXPECT_EQ(GrB_transpose(c, nullptr, GrB_NULL_ACCUM, a, nullptr),
            GrB_INVALID_OBJECT);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_STRNE(msg, "");

  cs.i.pop_back();
  EXPECT_EQ(GrB_transpose(c, nullptr, GrB_NULL_ACCUM, a, nullptr),
            GrB_SUCCESS);

  GrB_Matrix_free(&a);
  GrB_Matrix_free(&c);
}
