/* A pure C11 translation unit against the GraphBLAS C API — §II-B's
 * fundamental promise: "The API methods are declared to have a C interface,
 * so that C user programs can bind to them as specified." This file is
 * compiled as C (not C++), links against the C++ back end, and exercises
 * the polymorphic macro layer (_Generic dispatch + argument-count
 * selection). It is a plain main() so no C++ test framework leaks in.
 */
#include <math.h>
#include <stdbool.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "capi/graphblas_c.h"
#include "capi/graphblas_poly.h"
#include "capi/lagraph_c.h"

static int failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ++failures;                                                       \
      fprintf(stderr, "FAIL %s:%d: %s\n", __FILE__, __LINE__, #cond);   \
    }                                                                   \
  } while (0)

static void test_lifetime_polymorphic(void) {
  GrB_Matrix a = NULL;
  GrB_Vector v = NULL;
  CHECK(GrB_Matrix_new(&a, 4, 4) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&v, 4) == GrB_SUCCESS);

  /* Polymorphic setElement: 4 args -> matrix, 3 args -> vector. */
  CHECK(GrB_setElement(a, 2.5, 1, 2) == GrB_SUCCESS);
  CHECK(GrB_setElement(v, 7.0, 3) == GrB_SUCCESS);

  GrB_Index n = 0;
  CHECK(GrB_nvals(&n, a) == GrB_SUCCESS && n == 1);
  CHECK(GrB_nvals(&n, v) == GrB_SUCCESS && n == 1);

  double x = 0.0;
  CHECK(GrB_extractElement(&x, a, 1, 2) == GrB_SUCCESS && x == 2.5);
  CHECK(GrB_extractElement(&x, v, 3) == GrB_SUCCESS && x == 7.0);
  CHECK(GrB_extractElement(&x, v, 0) == GrB_NO_VALUE);

  CHECK(GrB_wait(a) == GrB_SUCCESS);
  CHECK(GrB_wait(v) == GrB_SUCCESS);

  /* Polymorphic free dispatches on the handle pointer type. */
  CHECK(GrB_free(&a) == GrB_SUCCESS && a == NULL);
  CHECK(GrB_free(&v) == GrB_SUCCESS && v == NULL);
}

static void test_polymorphic_operations(void) {
  GrB_Vector u = NULL, v = NULL, w = NULL;
  CHECK(GrB_Vector_new(&u, 3) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&v, 3) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&w, 3) == GrB_SUCCESS);
  CHECK(GrB_setElement(u, 2.0, 0) == GrB_SUCCESS);
  CHECK(GrB_setElement(u, 3.0, 1) == GrB_SUCCESS);
  CHECK(GrB_setElement(v, 10.0, 1) == GrB_SUCCESS);

  CHECK(GrB_eWiseAdd(w, NULL, GrB_NULL_ACCUM, GrB_PLUS_FP64, u, v, NULL) ==
        GrB_SUCCESS);
  double x = 0.0;
  CHECK(GrB_extractElement(&x, w, 1) == GrB_SUCCESS && x == 13.0);

  CHECK(GrB_eWiseMult(w, NULL, GrB_NULL_ACCUM, GrB_TIMES_FP64, u, v, NULL) ==
        GrB_SUCCESS);
  GrB_Index n = 0;
  CHECK(GrB_nvals(&n, w) == GrB_SUCCESS && n == 1);
  CHECK(GrB_extractElement(&x, w, 1) == GrB_SUCCESS && x == 30.0);

  CHECK(GrB_apply(w, NULL, GrB_NULL_ACCUM, GrB_AINV_FP64, u, NULL) ==
        GrB_SUCCESS);
  CHECK(GrB_extractElement(&x, w, 0) == GrB_SUCCESS && x == -2.0);

  CHECK(GrB_free(&u) == GrB_SUCCESS);
  CHECK(GrB_free(&v) == GrB_SUCCESS);
  CHECK(GrB_free(&w) == GrB_SUCCESS);
}

static void test_typed_variants(void) {
  /* Value-type _Generic dispatch: bool values route to the _BOOL variants,
   * integers to _INT64, floating point to _FP64 — all coercing through the
   * shared FP64 storage, so cross-typed reads see the same entry. */
  GrB_Matrix a = NULL;
  GrB_Vector v = NULL;
  CHECK(GrB_Matrix_new(&a, 3, 3) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&v, 3) == GrB_SUCCESS);

  bool b = true;
  int64_t k = 41;
  CHECK(GrB_setElement(a, b, 0, 1) == GrB_SUCCESS);
  CHECK(GrB_setElement(a, k, 1, 2) == GrB_SUCCESS);
  CHECK(GrB_setElement(a, 2, 2, 0) == GrB_SUCCESS); /* int literal -> INT64 */

  bool rb = false;
  int64_t rk = 0;
  double rd = 0.0;
  CHECK(GrB_extractElement(&rb, a, 0, 1) == GrB_SUCCESS && rb == true);
  CHECK(GrB_extractElement(&rk, a, 1, 2) == GrB_SUCCESS && rk == 41);
  CHECK(GrB_extractElement(&rd, a, 2, 0) == GrB_SUCCESS && rd == 2.0);
  /* Cross-typed reads of the same entries. */
  CHECK(GrB_extractElement(&rd, a, 0, 1) == GrB_SUCCESS && rd == 1.0);
  CHECK(GrB_extractElement(&rb, a, 1, 2) == GrB_SUCCESS && rb == true);
  CHECK(GrB_extractElement(&rk, a, 2, 0) == GrB_SUCCESS && rk == 2);

  /* A stored false is an explicit entry reading back as false, not
   * NO_VALUE — structure and value stay distinct. */
  CHECK(GrB_Matrix_setElement_BOOL(a, false, 0, 0) == GrB_SUCCESS);
  CHECK(GrB_Matrix_extractElement_BOOL(&rb, a, 0, 0) == GrB_SUCCESS &&
        rb == false);
  CHECK(GrB_Matrix_extractElement_BOOL(&rb, a, 2, 2) == GrB_NO_VALUE);

  /* Vector forms through the 3-argument arm of the polymorphic macros. */
  CHECK(GrB_setElement(v, b, 0) == GrB_SUCCESS);
  CHECK(GrB_setElement(v, (int64_t)9, 1) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&rb, v, 0) == GrB_SUCCESS && rb == true);
  CHECK(GrB_extractElement(&rk, v, 1) == GrB_SUCCESS && rk == 9);
  CHECK(GrB_extractElement(&rd, v, 1) == GrB_SUCCESS && rd == 9.0);

  /* Typed scalar assigns delegate to the FP64 storage as well. */
  CHECK(GrB_Vector_assign_BOOL(v, NULL, GrB_NULL_ACCUM, true, GrB_ALL, 3,
                               NULL) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&rb, v, 2) == GrB_SUCCESS && rb == true);
  CHECK(GrB_Vector_assign_INT64(v, NULL, GrB_NULL_ACCUM, 5, GrB_ALL, 3,
                                NULL) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&rk, v, 2) == GrB_SUCCESS && rk == 5);

  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&v) == GrB_SUCCESS);
}

static void test_runner_drivers(void) {
  /* The resumable-execution binding: configure a runner, drive PageRank
   * and BFS over a symmetric 8-ring, and read the telemetry back. */
  const GrB_Index n = 8;
  GrB_Matrix a = NULL;
  GrB_Vector rank = NULL, level = NULL;
  CHECK(GrB_Matrix_new(&a, n, n) == GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i) {
    CHECK(GrB_setElement(a, 1.0, i, (i + 1) % n) == GrB_SUCCESS);
    CHECK(GrB_setElement(a, 1.0, (i + 1) % n, i) == GrB_SUCCESS);
  }
  CHECK(GrB_Vector_new(&rank, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&level, n) == GrB_SUCCESS);

  LAGraph_Runner r = NULL;
  CHECK(LAGraph_Runner_new(&r) == GrB_SUCCESS);
  CHECK(LAGraph_Runner_set_slice_ms(r, 50.0) == GrB_SUCCESS);
  CHECK(LAGraph_Runner_set_max_slices(r, 0) == GrB_INVALID_VALUE);
  CHECK(LAGraph_Runner_set_max_slices(r, 100) == GrB_SUCCESS);
  CHECK(LAGraph_Runner_set_retry(r, 3, 0.5, 2.0, 2.0) == GrB_SUCCESS);
  CHECK(LAGraph_Runner_set_retry(r, -1, 0.5, 2.0, 2.0) == GrB_INVALID_VALUE);

  int32_t iters = 0;
  CHECK(LAGraph_Runner_pagerank(rank, r, a, 0.85, 1e-9, 100, &iters) ==
        GrB_SUCCESS);
  CHECK(iters > 0);
  double sum = 0.0;
  for (GrB_Index i = 0; i < n; ++i) {
    double x = 0.0;
    CHECK(GrB_extractElement(&x, rank, i) == GrB_SUCCESS);
    sum += x;
  }
  CHECK(fabs(sum - 1.0) < 1e-6); /* a PageRank vector is a distribution */

  int32_t slices = 0, retries = 0, degradations = 0;
  bool gave_up = true;
  LAGraph_StopReason stop = LAGraph_STOP_NONE;
  CHECK(LAGraph_Runner_stats(r, &slices, &retries, &degradations, &gave_up,
                             &stop) == GrB_SUCCESS);
  CHECK(slices >= 1);
  CHECK(!gave_up);
  CHECK(stop == LAGraph_STOP_CONVERGED);

  /* BFS levels are 0-based hop counts; on the ring both neighbours of the
   * source sit one hop out. */
  CHECK(LAGraph_Runner_bfs_level(level, r, a, 0) == GrB_SUCCESS);
  double hop = -1.0;
  CHECK(GrB_extractElement(&hop, level, 0) == GrB_SUCCESS && hop == 0.0);
  CHECK(GrB_extractElement(&hop, level, 1) == GrB_SUCCESS && hop == 1.0);
  CHECK(GrB_extractElement(&hop, level, n - 1) == GrB_SUCCESS && hop == 1.0);
  CHECK(GrB_extractElement(&hop, level, 4) == GrB_SUCCESS && hop == 4.0);

  CHECK(LAGraph_Runner_free(&r) == GrB_SUCCESS && r == NULL);
  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&rank) == GrB_SUCCESS);
  CHECK(GrB_free(&level) == GrB_SUCCESS);
}

static void test_runner_sssp_cc(void) {
  /* The SSSP and CC driven entry points over an 8-vertex graph made of two
   * disjoint 4-cycles (0-1-2-3 and 4-5-6-7), unit weights, symmetric. */
  const GrB_Index n = 8;
  GrB_Matrix a = NULL;
  GrB_Vector dist = NULL, labels = NULL;
  CHECK(GrB_Matrix_new(&a, n, n) == GrB_SUCCESS);
  for (GrB_Index c = 0; c < 2; ++c) {
    const GrB_Index base = c * 4;
    for (GrB_Index i = 0; i < 4; ++i) {
      const GrB_Index u = base + i, v = base + (i + 1) % 4;
      CHECK(GrB_setElement(a, 1.0, u, v) == GrB_SUCCESS);
      CHECK(GrB_setElement(a, 1.0, v, u) == GrB_SUCCESS);
    }
  }
  CHECK(GrB_Vector_new(&dist, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&labels, n) == GrB_SUCCESS);

  LAGraph_Runner r = NULL;
  CHECK(LAGraph_Runner_new(&r) == GrB_SUCCESS);

  /* Null-pointer contracts. */
  CHECK(LAGraph_Runner_sssp_bellman_ford(NULL, r, a, 0, NULL) ==
        GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_cc(NULL, r, a, NULL) == GrB_NULL_POINTER);

  /* SSSP from 0: its own 4-cycle is reachable (0,1,2,1 hops), the other
   * component is not (absent entries). */
  int32_t iters = 0;
  CHECK(LAGraph_Runner_sssp_bellman_ford(dist, r, a, 0, &iters) ==
        GrB_SUCCESS);
  CHECK(iters > 0);
  double d = -1.0;
  CHECK(GrB_extractElement(&d, dist, 0) == GrB_SUCCESS && d == 0.0);
  CHECK(GrB_extractElement(&d, dist, 1) == GrB_SUCCESS && d == 1.0);
  CHECK(GrB_extractElement(&d, dist, 2) == GrB_SUCCESS && d == 2.0);
  CHECK(GrB_extractElement(&d, dist, 3) == GrB_SUCCESS && d == 1.0);
  CHECK(GrB_extractElement(&d, dist, 5) == GrB_NO_VALUE);

  int32_t slices = 0;
  bool gave_up = true;
  LAGraph_StopReason stop = LAGraph_STOP_NONE;
  CHECK(LAGraph_Runner_stats(r, &slices, NULL, NULL, &gave_up, &stop) ==
        GrB_SUCCESS);
  CHECK(slices >= 1);
  CHECK(!gave_up);

  /* CC: each vertex labels with the minimum id of its component. */
  int32_t rounds = 0;
  CHECK(LAGraph_Runner_cc(labels, r, a, &rounds) == GrB_SUCCESS);
  CHECK(rounds > 0);
  for (GrB_Index v = 0; v < n; ++v) {
    double lab = -1.0;
    CHECK(GrB_extractElement(&lab, labels, v) == GrB_SUCCESS);
    CHECK(lab == (v < 4 ? 0.0 : 4.0));
  }

  CHECK(LAGraph_Runner_free(&r) == GrB_SUCCESS && r == NULL);
  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&dist) == GrB_SUCCESS);
  CHECK(GrB_free(&labels) == GrB_SUCCESS);
}

static void test_runner_clustering_bc(void) {
  /* The MCL, peer-pressure, and betweenness driven entry points over the
   * same two disjoint 4-cycles: both clusterings must separate the two
   * components, and bc from sources {0, 4} must score the cycle vertices
   * symmetrically. */
  const GrB_Index n = 8;
  GrB_Matrix a = NULL;
  GrB_Vector labels = NULL, centrality = NULL;
  CHECK(GrB_Matrix_new(&a, n, n) == GrB_SUCCESS);
  for (GrB_Index c = 0; c < 2; ++c) {
    const GrB_Index base = c * 4;
    for (GrB_Index i = 0; i < 4; ++i) {
      const GrB_Index u = base + i, v = base + (i + 1) % 4;
      CHECK(GrB_setElement(a, 1.0, u, v) == GrB_SUCCESS);
      CHECK(GrB_setElement(a, 1.0, v, u) == GrB_SUCCESS);
    }
  }
  CHECK(GrB_Vector_new(&labels, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&centrality, n) == GrB_SUCCESS);

  LAGraph_Runner r = NULL;
  CHECK(LAGraph_Runner_new(&r) == GrB_SUCCESS);

  /* Null-pointer and argument contracts. */
  CHECK(LAGraph_Runner_mcl(NULL, r, a, 2.0, 100, 1e-6, NULL) ==
        GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_peer_pressure(NULL, r, a, 50, NULL) ==
        GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_bc(NULL, r, a, NULL, 0) == GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_bc(centrality, r, a, NULL, 2) == GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_mcl(labels, r, a, 0.5, 100, 1e-6, NULL) ==
        GrB_INVALID_VALUE);
  CHECK(LAGraph_Runner_peer_pressure(labels, r, a, 0, NULL) ==
        GrB_INVALID_VALUE);

  /* MCL: the two components must land in different clusters. */
  int32_t iters = 0;
  CHECK(LAGraph_Runner_mcl(labels, r, a, 2.0, 100, 1e-6, &iters) ==
        GrB_SUCCESS);
  CHECK(iters > 0);
  double l0 = -1.0, l4 = -1.0, lv = -1.0;
  CHECK(GrB_extractElement(&l0, labels, 0) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&l4, labels, 4) == GrB_SUCCESS);
  for (GrB_Index v = 1; v < 4; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l0);
  }
  for (GrB_Index v = 5; v < n; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l4);
  }
  CHECK(l0 != l4);

  /* Peer pressure: likewise component-separating on this graph. */
  iters = 0;
  CHECK(LAGraph_Runner_peer_pressure(labels, r, a, 50, &iters) ==
        GrB_SUCCESS);
  CHECK(iters > 0);
  CHECK(GrB_extractElement(&l0, labels, 0) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&l4, labels, 4) == GrB_SUCCESS);
  for (GrB_Index v = 1; v < 4; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l0);
  }
  for (GrB_Index v = 5; v < n; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l4);
  }
  CHECK(l0 != l4);

  /* BC from {0, 4}: by cycle symmetry the two neighbours of each source
   * carry equal centrality, and the sources' own scores are zero. */
  const GrB_Index sources[2] = {0, 4};
  CHECK(LAGraph_Runner_bc(centrality, r, a, sources, 2) == GrB_SUCCESS);
  double c1 = -1.0, c3 = -2.0, c5 = -1.0, c7 = -2.0;
  CHECK(GrB_extractElement(&c1, centrality, 1) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&c3, centrality, 3) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&c5, centrality, 5) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&c7, centrality, 7) == GrB_SUCCESS);
  CHECK(c1 == c3 && c5 == c7 && c1 == c5);

  int32_t slices = 0;
  bool gave_up = true;
  CHECK(LAGraph_Runner_stats(r, &slices, NULL, NULL, &gave_up, NULL) ==
        GrB_SUCCESS);
  CHECK(slices >= 1);
  CHECK(!gave_up);

  CHECK(LAGraph_Runner_free(&r) == GrB_SUCCESS && r == NULL);
  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&labels) == GrB_SUCCESS);
  CHECK(GrB_free(&centrality) == GrB_SUCCESS);
}

static void test_runner_sssp_delta_scc_coloring(void) {
  /* The delta-stepping, SCC, and coloring driven entry points over the same
   * two disjoint symmetric 4-cycles used above. */
  const GrB_Index n = 8;
  GrB_Matrix a = NULL;
  GrB_Vector dist = NULL, labels = NULL, colors = NULL;
  CHECK(GrB_Matrix_new(&a, n, n) == GrB_SUCCESS);
  for (GrB_Index c = 0; c < 2; ++c) {
    const GrB_Index base = c * 4;
    for (GrB_Index i = 0; i < 4; ++i) {
      const GrB_Index u = base + i, v = base + (i + 1) % 4;
      CHECK(GrB_setElement(a, 1.0, u, v) == GrB_SUCCESS);
      CHECK(GrB_setElement(a, 1.0, v, u) == GrB_SUCCESS);
    }
  }
  CHECK(GrB_Vector_new(&dist, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&labels, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&colors, n) == GrB_SUCCESS);

  LAGraph_Runner r = NULL;
  CHECK(LAGraph_Runner_new(&r) == GrB_SUCCESS);

  /* Null-pointer contracts. */
  CHECK(LAGraph_Runner_sssp_delta_stepping(NULL, r, a, 0, 1.0, NULL) ==
        GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_scc(NULL, r, a, NULL) == GrB_NULL_POINTER);
  CHECK(LAGraph_Runner_coloring(NULL, r, a, 42, NULL) == GrB_NULL_POINTER);

  /* Delta-stepping from 0 must agree with Bellman-Ford on this graph:
   * distances 0,1,2,1 in its own cycle, the other component unreached. */
  int32_t iters = 0;
  CHECK(LAGraph_Runner_sssp_delta_stepping(dist, r, a, 0, 1.0, &iters) ==
        GrB_SUCCESS);
  CHECK(iters > 0);
  double d = -1.0;
  CHECK(GrB_extractElement(&d, dist, 0) == GrB_SUCCESS && d == 0.0);
  CHECK(GrB_extractElement(&d, dist, 1) == GrB_SUCCESS && d == 1.0);
  CHECK(GrB_extractElement(&d, dist, 2) == GrB_SUCCESS && d == 2.0);
  CHECK(GrB_extractElement(&d, dist, 3) == GrB_SUCCESS && d == 1.0);
  CHECK(GrB_extractElement(&d, dist, 6) == GrB_NO_VALUE);

  /* SCC: a symmetric 4-cycle is one strongly connected component, so the
   * two components must get two distinct shared labels. */
  int32_t pivots = 0;
  CHECK(LAGraph_Runner_scc(labels, r, a, &pivots) == GrB_SUCCESS);
  CHECK(pivots > 0);
  double l0 = -1.0, l4 = -1.0, lv = -1.0;
  CHECK(GrB_extractElement(&l0, labels, 0) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&l4, labels, 4) == GrB_SUCCESS);
  for (GrB_Index v = 1; v < 4; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l0);
  }
  for (GrB_Index v = 5; v < n; ++v) {
    CHECK(GrB_extractElement(&lv, labels, v) == GrB_SUCCESS && lv == l4);
  }
  CHECK(l0 != l4);

  /* Coloring: every vertex colored with a 1-based color, and no edge joins
   * two equal colors — checked against the known edge set. */
  int32_t rounds = 0;
  CHECK(LAGraph_Runner_coloring(colors, r, a, 42, &rounds) == GrB_SUCCESS);
  CHECK(rounds > 0);
  double col[8];
  for (GrB_Index v = 0; v < n; ++v) {
    col[v] = 0.0;
    CHECK(GrB_extractElement(&col[v], colors, v) == GrB_SUCCESS);
    CHECK(col[v] >= 1.0 && col[v] <= (double)n);
  }
  for (GrB_Index c = 0; c < 2; ++c) {
    const GrB_Index base = c * 4;
    for (GrB_Index i = 0; i < 4; ++i) {
      CHECK(col[base + i] != col[base + (i + 1) % 4]);
    }
  }

  CHECK(LAGraph_Runner_free(&r) == GrB_SUCCESS && r == NULL);
  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&dist) == GrB_SUCCESS);
  CHECK(GrB_free(&labels) == GrB_SUCCESS);
  CHECK(GrB_free(&colors) == GrB_SUCCESS);
}

static void test_service(void) {
  /* The concurrent serving surface: publish a graph, submit algorithm jobs,
   * wait for bit-exact results, and read the stats counters back. */
  const GrB_Index n = 8;
  GrB_Matrix a = NULL;
  GrB_Vector rank = NULL, level = NULL;
  CHECK(GrB_Matrix_new(&a, n, n) == GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i) {
    CHECK(GrB_setElement(a, 1.0, i, (i + 1) % n) == GrB_SUCCESS);
    CHECK(GrB_setElement(a, 1.0, (i + 1) % n, i) == GrB_SUCCESS);
  }
  CHECK(GrB_Vector_new(&rank, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&level, n) == GrB_SUCCESS);

  LAGraph_Service svc = NULL;
  CHECK(LAGraph_Service_new(NULL, 2, 64, 0, 0, 0, 0) == GrB_NULL_POINTER);
  CHECK(LAGraph_Service_new(&svc, 0, 64, 0, 0, 0, 0) == GrB_INVALID_VALUE);
  CHECK(LAGraph_Service_new(&svc, 2, 64, 0, 0, 0, 0) == GrB_SUCCESS);

  uint64_t version = 99;
  CHECK(LAGraph_Service_version(svc, "g", &version) == GrB_SUCCESS);
  CHECK(version == 0); /* never published */
  CHECK(LAGraph_Service_publish(svc, "g", a) == GrB_SUCCESS);
  CHECK(LAGraph_Service_version(svc, "g", &version) == GrB_SUCCESS);
  CHECK(version == 1);

  /* Unknown names are rejected up front, not at execution time. */
  uint64_t job = 0;
  CHECK(LAGraph_Service_submit(svc, "pagerank", "nope", 0, &job) ==
        GrB_INVALID_VALUE);
  CHECK(LAGraph_Service_submit(svc, "quantum", "g", 0, &job) ==
        GrB_INVALID_VALUE);

  /* PageRank through the service matches the distribution invariant. */
  CHECK(LAGraph_Service_submit(svc, "pagerank", "g", 0, &job) == GrB_SUCCESS);
  CHECK(LAGraph_Service_wait(rank, svc, job) == GrB_SUCCESS);
  LAGraph_JobState state = LAGraph_JOB_QUEUED;
  CHECK(LAGraph_Service_poll(svc, job, &state) == GrB_SUCCESS);
  CHECK(state == LAGraph_JOB_DONE);
  double sum = 0.0;
  for (GrB_Index i = 0; i < n; ++i) {
    double x = 0.0;
    CHECK(GrB_extractElement(&x, rank, i) == GrB_SUCCESS);
    sum += x;
  }
  CHECK(fabs(sum - 1.0) < 1e-6);
  CHECK(LAGraph_Service_release(svc, job) == GrB_SUCCESS);
  CHECK(LAGraph_Service_poll(svc, job, &state) == GrB_INVALID_VALUE);

  /* BFS through the service: ring hop counts from vertex 0. */
  uint64_t bfs_job = 0;
  CHECK(LAGraph_Service_submit(svc, "bfs", "g", 0, &bfs_job) == GrB_SUCCESS);
  CHECK(LAGraph_Service_wait(level, svc, bfs_job) == GrB_SUCCESS);
  double hop = -1.0;
  CHECK(GrB_extractElement(&hop, level, 0) == GrB_SUCCESS && hop == 0.0);
  CHECK(GrB_extractElement(&hop, level, 1) == GrB_SUCCESS && hop == 1.0);
  CHECK(GrB_extractElement(&hop, level, n - 1) == GrB_SUCCESS && hop == 1.0);
  CHECK(GrB_extractElement(&hop, level, 4) == GrB_SUCCESS && hop == 4.0);

  uint64_t submitted = 0, shed = 0, completed = 0, failed = 0;
  uint64_t cancelled = 0, watchdog = 0, depth = 0, running = 0;
  CHECK(LAGraph_Service_stats(svc, &submitted, &shed, &completed, &failed,
                              &cancelled, &watchdog, &depth,
                              &running) == GrB_SUCCESS);
  CHECK(submitted == 2);
  CHECK(completed == 2);
  CHECK(shed == 0 && failed == 0 && cancelled == 0 && watchdog == 0);

  CHECK(LAGraph_Service_free(&svc) == GrB_SUCCESS && svc == NULL);

  /* Overload shedding: a 1-byte shed watermark with live objects in the
   * process sheds every submission as GxB_OVERLOADED — deterministically,
   * with nothing enqueued and the handle still fully usable. */
  LAGraph_Service tiny = NULL;
  CHECK(LAGraph_Service_new(&tiny, 1, 4, 0, 0, 1, 0) == GrB_SUCCESS);
  CHECK(LAGraph_Service_publish(tiny, "g", a) == GrB_SUCCESS);
  CHECK(LAGraph_Service_submit(tiny, "pagerank", "g", 0, &job) ==
        GxB_OVERLOADED);
  CHECK(LAGraph_Service_submit(tiny, "bfs", "g", 0, &job) == GxB_OVERLOADED);
  CHECK(LAGraph_Service_stats(tiny, &submitted, &shed, NULL, NULL, NULL, NULL,
                              &depth, NULL) == GrB_SUCCESS);
  CHECK(submitted == 0);
  CHECK(shed == 2);
  CHECK(depth == 0);
  CHECK(LAGraph_Service_free(&tiny) == GrB_SUCCESS);

  /* Batched execution: same client surface, coalesced kernels. Every bfs
   * submission flows through the coalescing stage (batched_requests counts
   * members no matter how the window groups them into batches), and each
   * client's levels match the unbatched contract. */
  LAGraph_Service bsvc = NULL;
  CHECK(LAGraph_Service_new_ex(&bsvc, 0, 64, 0, 0, 0, 0, 4, 50000.0) ==
        GrB_INVALID_VALUE); /* workers must be >= 1 */
  CHECK(LAGraph_Service_new_ex(&bsvc, 1, 64, 0, 0, 0, 0, 4, -1.0) ==
        GrB_INVALID_VALUE); /* negative window */
  CHECK(LAGraph_Service_new_ex(&bsvc, 1, 64, 0, 0, 0, 0, 4, 50000.0) ==
        GrB_SUCCESS);
  CHECK(LAGraph_Service_publish(bsvc, "g", a) == GrB_SUCCESS);
  uint64_t bjobs[3];
  for (int i = 0; i < 3; ++i) {
    CHECK(LAGraph_Service_submit(bsvc, "bfs", "g", (GrB_Index)i,
                                 &bjobs[i]) == GrB_SUCCESS);
  }
  for (int i = 0; i < 3; ++i) {
    CHECK(LAGraph_Service_wait(level, bsvc, bjobs[i]) == GrB_SUCCESS);
    double h = -1.0;
    CHECK(GrB_extractElement(&h, level, (GrB_Index)i) == GrB_SUCCESS &&
          h == 0.0);
    CHECK(GrB_extractElement(&h, level, (GrB_Index)(i + 1)) == GrB_SUCCESS &&
          h == 1.0);
    CHECK(LAGraph_Service_release(bsvc, bjobs[i]) == GrB_SUCCESS);
  }
  uint64_t batches = 0, batched = 0;
  CHECK(LAGraph_Service_batch_stats(NULL, &batches, &batched) ==
        GrB_NULL_POINTER);
  CHECK(LAGraph_Service_batch_stats(bsvc, &batches, &batched) == GrB_SUCCESS);
  CHECK(batched == 3);
  CHECK(batches >= 1 && batches <= 3);
  CHECK(LAGraph_Service_free(&bsvc) == GrB_SUCCESS);

  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&rank) == GrB_SUCCESS);
  CHECK(GrB_free(&level) == GrB_SUCCESS);
}

static void test_storage_format_options(void) {
  /* GxB sparsity control: pin forms, read status back, and confirm the
   * stored values never depend on the form. */
  GrB_Matrix a = NULL;
  GrB_Vector v = NULL;
  CHECK(GrB_Matrix_new(&a, 4, 4) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&v, 4) == GrB_SUCCESS);
  CHECK(GrB_setElement(a, 1.5, 0, 1) == GrB_SUCCESS);
  CHECK(GrB_setElement(a, 2.5, 2, 3) == GrB_SUCCESS);

  int32_t s = 0;
  CHECK(GxB_Matrix_Option_get(a, GxB_SPARSITY_CONTROL, &s) == GrB_SUCCESS);
  if (getenv("LAGRAPH_FORCE_FORMAT") == NULL) {
    /* The untouched default is auto — unless the CI leg forces a form
     * process-wide, in which case the forced control is the default. */
    CHECK(s == GxB_AUTO_SPARSITY);
  }

  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_CONTROL, GxB_BITMAP) ==
        GrB_SUCCESS);
  CHECK(GxB_Matrix_Option_get(a, GxB_SPARSITY_STATUS, &s) == GrB_SUCCESS);
  CHECK(s == GxB_BITMAP);
  CHECK(GxB_Matrix_check(a, GxB_CHECK_FULL) == GrB_SUCCESS);
  GrB_Index nv = 0;
  double x = 0.0;
  CHECK(GrB_nvals(&nv, a) == GrB_SUCCESS && nv == 2);
  CHECK(GrB_extractElement(&x, a, 0, 1) == GrB_SUCCESS && x == 1.5);
  CHECK(GrB_extractElement(&x, a, 2, 3) == GrB_SUCCESS && x == 2.5);
  CHECK(GrB_extractElement(&x, a, 1, 1) == GrB_NO_VALUE);

  /* Full is a preference: with absent entries the matrix degrades to
   * bitmap rather than erroring or inventing values. */
  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_CONTROL, GxB_FULL) ==
        GrB_SUCCESS);
  CHECK(GxB_Matrix_Option_get(a, GxB_SPARSITY_STATUS, &s) == GrB_SUCCESS);
  CHECK(s == GxB_BITMAP);
  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_CONTROL, GxB_AUTO_SPARSITY) ==
        GrB_SUCCESS);
  CHECK(GxB_Matrix_check(a, GxB_CHECK_FULL) == GrB_SUCCESS);
  CHECK(GrB_nvals(&nv, a) == GrB_SUCCESS && nv == 2);

  /* A vector with every position present really goes full. */
  CHECK(GrB_Vector_assign_FP64(v, NULL, GrB_NULL_ACCUM, 3.0, GrB_ALL, 4,
                               NULL) == GrB_SUCCESS);
  CHECK(GxB_Vector_Option_set(v, GxB_SPARSITY_CONTROL, GxB_FULL) ==
        GrB_SUCCESS);
  CHECK(GxB_Vector_Option_get(v, GxB_SPARSITY_STATUS, &s) == GrB_SUCCESS);
  CHECK(s == GxB_FULL);
  CHECK(GxB_Vector_check(v, GxB_CHECK_FULL) == GrB_SUCCESS);
  CHECK(GrB_extractElement(&x, v, 2) == GrB_SUCCESS && x == 3.0);

  /* Bad arguments. */
  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_CONTROL, 0) ==
        GrB_INVALID_VALUE);
  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_CONTROL, 16) ==
        GrB_INVALID_VALUE);
  CHECK(GxB_Matrix_Option_set(a, GxB_SPARSITY_STATUS, GxB_BITMAP) ==
        GrB_INVALID_VALUE);
  CHECK(GxB_Vector_Option_get(v, GxB_SPARSITY_CONTROL, NULL) ==
        GrB_NULL_POINTER);

  CHECK(GrB_free(&a) == GrB_SUCCESS);
  CHECK(GrB_free(&v) == GrB_SUCCESS);
}

static void test_c_bfs(void) {
  /* The Fig. 2(d) loop, written in plain C: a 5-cycle. */
  const GrB_Index n = 5;
  GrB_Matrix graph = NULL;
  GrB_Vector frontier = NULL, levels = NULL;
  CHECK(GrB_Matrix_new(&graph, n, n) == GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i) {
    CHECK(GrB_setElement(graph, 1.0, i, (i + 1) % n) == GrB_SUCCESS);
  }
  CHECK(GrB_Vector_new(&frontier, n) == GrB_SUCCESS);
  CHECK(GrB_Vector_new(&levels, n) == GrB_SUCCESS);
  CHECK(GrB_setElement(frontier, 1.0, 0) == GrB_SUCCESS);

  GrB_Descriptor desc = NULL, desc_s = NULL;
  CHECK(GrB_Descriptor_new(&desc) == GrB_SUCCESS);
  CHECK(GrB_Descriptor_set(desc, GrB_INP0, GrB_TRAN) == GrB_SUCCESS);
  CHECK(GrB_Descriptor_set(desc, GrB_MASK, GrB_COMP_STRUCTURE) ==
        GrB_SUCCESS);
  CHECK(GrB_Descriptor_set(desc, GrB_OUTP, GrB_REPLACE) == GrB_SUCCESS);
  CHECK(GrB_Descriptor_new(&desc_s) == GrB_SUCCESS);
  CHECK(GrB_Descriptor_set(desc_s, GrB_MASK, GrB_STRUCTURE) == GrB_SUCCESS);

  GrB_Index nvals = 0, depth = 0;
  CHECK(GrB_nvals(&nvals, frontier) == GrB_SUCCESS);
  while (nvals > 0) {
    ++depth;
    CHECK(GrB_Vector_assign_FP64(levels, frontier, GrB_NULL_ACCUM,
                                 (double)depth, GrB_ALL, n,
                                 desc_s) == GrB_SUCCESS);
    CHECK(GrB_mxv(frontier, levels, GrB_NULL_ACCUM, GrB_LOR_LAND_SEMIRING,
                  graph, frontier, desc) == GrB_SUCCESS);
    CHECK(GrB_nvals(&nvals, frontier) == GrB_SUCCESS);
  }
  /* On a directed 5-cycle from 0: levels are 1,2,3,4,5. */
  for (GrB_Index v = 0; v < n; ++v) {
    double lvl = 0.0;
    CHECK(GrB_extractElement(&lvl, levels, v) == GrB_SUCCESS);
    CHECK(fabs(lvl - (double)(v + 1)) < 1e-12);
  }

  CHECK(GrB_free(&graph) == GrB_SUCCESS);
  CHECK(GrB_free(&frontier) == GrB_SUCCESS);
  CHECK(GrB_free(&levels) == GrB_SUCCESS);
  CHECK(GrB_free(&desc) == GrB_SUCCESS);
  CHECK(GrB_free(&desc_s) == GrB_SUCCESS);
}

int main(void) {
  test_lifetime_polymorphic();
  test_polymorphic_operations();
  test_typed_variants();
  test_runner_drivers();
  test_runner_sssp_cc();
  test_runner_clustering_bc();
  test_runner_sssp_delta_scc_coloring();
  test_service();
  test_storage_format_options();
  test_c_bfs();
  if (failures == 0) {
    printf("test_capi_c: all C-language API checks passed\n");
    return 0;
  }
  printf("test_capi_c: %d failures\n", failures);
  return 1;
}
