// Connected components (FastSV) vs union-find.
#include <gtest/gtest.h>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

void expect_cc_matches(const Graph& g) {
  auto got = connected_components(g);
  auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
  auto want = ref::connected_components(sg);
  auto dense = to_dense_std(got, std::uint64_t{0});
  ASSERT_EQ(dense.size(), want.size());
  for (Index v = 0; v < sg.n; ++v) {
    EXPECT_EQ(dense[v], want[v]) << "vertex " << v;
  }
}

}  // namespace

TEST(ConnectedComponents, SingleComponent) {
  expect_cc_matches(Graph(path_graph(20), Kind::undirected));
  expect_cc_matches(Graph(cycle_graph(9), Kind::undirected));
  expect_cc_matches(Graph(complete_graph(6), Kind::undirected));
}

TEST(ConnectedComponents, ManyComponents) {
  // Three disjoint pieces + isolated vertices.
  gb::Matrix<double> a(12, 12);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(4, 5);
  add(7, 8);
  add(8, 9);
  add(9, 7);
  Graph g(std::move(a), Kind::undirected);
  expect_cc_matches(g);
  auto labels = to_dense_std(connected_components(g), std::uint64_t{0});
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[5], 4u);
  EXPECT_EQ(labels[9], 7u);
  EXPECT_EQ(labels[3], 3u);   // isolated: own label
  EXPECT_EQ(labels[11], 11u);
}

TEST(ConnectedComponents, RandomGraphs) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    // Sparse enough to have several components.
    expect_cc_matches(Graph(erdos_renyi(300, 150, seed), Kind::undirected));
  }
  expect_cc_matches(Graph(rmat(9, 2, 13), Kind::undirected));
}

TEST(ConnectedComponents, DirectedInputTreatedUndirected) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);  // one-way edge still connects the component
  a.set_element(2, 3, 1.0);
  Graph g(std::move(a), Kind::directed);
  auto labels = to_dense_std(connected_components(g), std::uint64_t{0});
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[3], 2u);
}

TEST(ConnectedComponents, LabelsAreComponentMinima) {
  Graph g(erdos_renyi(100, 80, 14), Kind::undirected);
  auto labels = to_dense_std(connected_components(g), std::uint64_t{0});
  for (Index v = 0; v < 100; ++v) {
    EXPECT_LE(labels[v], v);               // min label property
    EXPECT_EQ(labels[labels[v]], labels[v]);  // representative is a root
  }
}
