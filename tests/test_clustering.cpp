// Clustering algorithms: MCL, peer pressure, and local (PPR) clustering.
// Cluster outputs are not unique, so tests use planted-structure graphs:
// two dense cliques joined by a single bridge edge must come back as two
// clusters under any sane clustering.
#include <gtest/gtest.h>

#include <set>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

/// Two k-cliques {0..k-1} and {k..2k-1} bridged by edge (k-1, k).
gb::Matrix<double> two_cliques(Index k) {
  gb::Matrix<double> a(2 * k, 2 * k);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  for (Index base : {Index{0}, k}) {
    for (Index i = 0; i < k; ++i) {
      for (Index j = i + 1; j < k; ++j) add(base + i, base + j);
    }
  }
  add(k - 1, k);
  return a;
}

/// All members of [lo, hi) share a label, distinct from [hi, end)'s label.
void expect_split(const std::vector<std::uint64_t>& labels, Index k) {
  for (Index v = 1; v < k; ++v) EXPECT_EQ(labels[v], labels[0]) << v;
  for (Index v = k + 1; v < 2 * k; ++v) EXPECT_EQ(labels[v], labels[k]) << v;
  EXPECT_NE(labels[0], labels[k]);
}

}  // namespace

TEST(Mcl, SplitsTwoCliques) {
  Graph g(two_cliques(6), Kind::undirected);
  auto labels = to_dense_std(mcl(g).labels, std::uint64_t{0});
  expect_split(labels, 6);
}

TEST(Mcl, SingleCliqueIsOneCluster) {
  Graph g(complete_graph(8), Kind::undirected);
  auto labels = to_dense_std(mcl(g).labels, std::uint64_t{0});
  std::set<std::uint64_t> uniq(labels.begin(), labels.end());
  EXPECT_EQ(uniq.size(), 1u);
}

TEST(Mcl, DisconnectedComponentsGetDistinctLabels) {
  gb::Matrix<double> a(6, 6);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(0, 2);
  add(3, 4);
  add(4, 5);
  add(3, 5);
  Graph g(std::move(a), Kind::undirected);
  auto labels = to_dense_std(mcl(g).labels, std::uint64_t{99});
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(PeerPressure, SplitsTwoCliques) {
  Graph g(two_cliques(8), Kind::undirected);
  auto labels = to_dense_std(peer_pressure(g).labels, std::uint64_t{0});
  expect_split(labels, 8);
}

TEST(PeerPressure, IsolatedVerticesKeepOwnLabel) {
  gb::Matrix<double> a(5, 5);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 0, 1.0);
  Graph g(std::move(a), Kind::undirected);
  auto labels = to_dense_std(peer_pressure(g).labels, std::uint64_t{0});
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[0], labels[1]);
}

TEST(LocalClustering, FindsSeedClique) {
  Graph g(two_cliques(8), Kind::undirected);
  auto res = local_clustering(g, /*seed=*/2);
  auto members = to_dense_std(res.members, false);
  // The seed's clique should be (mostly) inside, the other clique outside.
  int inside = 0, outside = 0;
  for (Index v = 0; v < 8; ++v) inside += members[v] ? 1 : 0;
  for (Index v = 8; v < 16; ++v) outside += members[v] ? 1 : 0;
  EXPECT_GE(inside, 6);
  EXPECT_LE(outside, 1);
  // One bridge edge, clique volume ~ 8*7+1: conductance must be small.
  EXPECT_LT(res.conductance, 0.1);
  EXPECT_GT(res.sweep_size, 0);
}

TEST(LocalClustering, ConductanceMatchesChecker) {
  Graph g(two_cliques(6), Kind::undirected);
  auto res = local_clustering(g, 0);
  auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
  std::vector<std::uint8_t> in_s(g.nrows(), 0);
  auto members = to_dense_std(res.members, false);
  for (Index v = 0; v < g.nrows(); ++v) in_s[v] = members[v] ? 1 : 0;
  EXPECT_NEAR(res.conductance, ref::conductance(sg, in_s), 1e-9);
}

TEST(LocalClustering, SeedValidation) {
  Graph g(two_cliques(4), Kind::undirected);
  EXPECT_THROW(local_clustering(g, 99), gb::Error);
}

TEST(LocalClustering, WholeGraphWhenNoStructure) {
  // On a clique the best sweep is almost everything or almost nothing —
  // either way the call must return cleanly with a valid conductance.
  Graph g(complete_graph(10), Kind::undirected);
  auto res = local_clustering(g, 3);
  EXPECT_GE(res.conductance, 0.0);
  EXPECT_LE(res.conductance, 1.0);
}
