// Shared helpers for the conformance tests: seeded random GraphBLAS objects
// and the descriptor sweep used to exercise every mask/accum/replace
// combination against the dense mimics.
#pragma once

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "capi/graphblas_c.h"
#include "reference/dense_ref.hpp"

namespace testutil {

using gb::Index;

// --- pre/post snapshots over the C API ------------------------------------
//
// Used by the fault-injection and governor soaks to assert the transactional
// contract: after any injected failure (OOM, cancellation, deadline, budget)
// the output object must compare equal to its pre-call snapshot.

struct MatrixSnapshot {
  GrB_Index nrows = 0, ncols = 0;
  std::vector<GrB_Index> r, c;
  std::vector<double> v;

  friend bool operator==(const MatrixSnapshot&,
                         const MatrixSnapshot&) = default;
};

struct VectorSnapshot {
  GrB_Index size = 0;
  std::vector<GrB_Index> i;
  std::vector<double> v;

  friend bool operator==(const VectorSnapshot&,
                         const VectorSnapshot&) = default;
};

inline MatrixSnapshot snapshot(GrB_Matrix a) {
  MatrixSnapshot s;
  EXPECT_EQ(GrB_Matrix_nrows(&s.nrows, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&s.ncols, a), GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&n, a), GrB_SUCCESS);
  // One extra slot so empty objects still hand out non-null pointers.
  s.r.resize(n + 1);
  s.c.resize(n + 1);
  s.v.resize(n + 1);
  GrB_Index cap = n + 1;
  EXPECT_EQ(
      GrB_Matrix_extractTuples_FP64(s.r.data(), s.c.data(), s.v.data(), &cap,
                                    a),
      GrB_SUCCESS);
  s.r.resize(cap);
  s.c.resize(cap);
  s.v.resize(cap);
  return s;
}

inline VectorSnapshot snapshot(GrB_Vector w) {
  VectorSnapshot s;
  EXPECT_EQ(GrB_Vector_size(&s.size, w), GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Vector_nvals(&n, w), GrB_SUCCESS);
  s.i.resize(n + 1);
  s.v.resize(n + 1);
  GrB_Index cap = n + 1;
  EXPECT_EQ(GrB_Vector_extractTuples_FP64(s.i.data(), s.v.data(), &cap, w),
            GrB_SUCCESS);
  s.i.resize(cap);
  s.v.resize(cap);
  return s;
}

inline gb::Matrix<double> random_matrix(Index nrows, Index ncols,
                                        double density, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-4.0, 4.0);
  std::bernoulli_distribution keep(density);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index i = 0; i < nrows; ++i) {
    for (Index j = 0; j < ncols; ++j) {
      if (keep(rng)) {
        r.push_back(i);
        c.push_back(j);
        // A few exact zeros so valued masks differ from structural ones.
        double x = val(rng);
        v.push_back(std::abs(x) < 0.4 ? 0.0 : x);
      }
    }
  }
  gb::Matrix<double> a(nrows, ncols);
  a.build(r, c, v, gb::Plus{});
  return a;
}

inline gb::Vector<double> random_vector(Index n, double density,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-4.0, 4.0);
  std::bernoulli_distribution keep(density);
  gb::Vector<double> v(n);
  for (Index i = 0; i < n; ++i) {
    if (keep(rng)) {
      double x = val(rng);
      v.set_element(i, std::abs(x) < 0.4 ? 0.0 : x);
    }
  }
  return v;
}

/// The descriptor sweep: every combination of replace / complement /
/// structural (transposes are swept separately per operation).
inline std::vector<gb::Descriptor> mask_descriptor_sweep() {
  std::vector<gb::Descriptor> out;
  for (bool replace : {false, true}) {
    for (bool comp : {false, true}) {
      for (bool structural : {false, true}) {
        gb::Descriptor d;
        d.replace = replace;
        d.mask_complement = comp;
        d.mask_structural = structural;
        out.push_back(d);
      }
    }
  }
  return out;
}

inline std::string desc_name(const gb::Descriptor& d) {
  std::string s;
  s += d.replace ? "R" : "-";
  s += d.mask_complement ? "C" : "-";
  s += d.mask_structural ? "S" : "-";
  s += d.transpose_a ? "Ta" : "--";
  s += d.transpose_b ? "Tb" : "--";
  return s;
}

}  // namespace testutil
