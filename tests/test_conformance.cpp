// The SuiteSparse-style conformance harness (§II-A): run randomized
// workloads through the optimised library and the dense mimics in lockstep,
// requiring identical values AND patterns at every step. One failing seed is
// a spec violation somewhere in the op stack.
#include <gtest/gtest.h>

#include <random>

#include "test_common.hpp"

using namespace testutil;
using gb::Index;

namespace ref {
bool self_check();  // defined in dense_ref.cpp
}

TEST(Conformance, MimicSelfCheck) { EXPECT_TRUE(ref::self_check()); }

namespace {

/// A lockstep pair of states: the opaque objects and their dense shadows.
struct Lockstep {
  gb::Matrix<double> a, b, c;
  ref::DenseMat<double> da, db, dc;
  gb::Vector<double> u, w;
  ref::DenseVec<double> du, dw;

  explicit Lockstep(std::uint64_t seed)
      : a(random_matrix(11, 11, 0.35, seed)),
        b(random_matrix(11, 11, 0.35, seed + 1)),
        c(random_matrix(11, 11, 0.25, seed + 2)),
        da(ref::from_gb(a)),
        db(ref::from_gb(b)),
        dc(ref::from_gb(c)),
        u(random_vector(11, 0.5, seed + 3)),
        w(random_vector(11, 0.3, seed + 4)),
        du(ref::from_gb(u)),
        dw(ref::from_gb(w)) {}

  void expect_synced(const char* where) {
    EXPECT_TRUE(ref::equal(dc, c)) << where;
    EXPECT_TRUE(ref::equal(dw, w)) << where;
  }
};

// A chain of operations where each output feeds the next — catches state
// corruption that single-op tests cannot. The dense mimics know nothing of
// storage forms, so running the same chain with every object pinned to a
// bitmap/full preference (see the DenseForm legs below) checks that the
// form changes nothing observable.
void run_pipeline(Lockstep& s) {
  const gb::Plus* no_acc = nullptr;
  const ref::DenseMat<bool>* no_mmask = nullptr;
  const ref::DenseVec<bool>* no_vmask = nullptr;

  // 1. C = A +.* B
  gb::mxm(s.c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), s.a, s.b);
  ref::mxm(s.dc, no_mmask, no_acc, gb::plus_times<double>(), s.da, s.db,
           gb::desc_default);
  s.expect_synced("mxm");

  // 2. C += C' (accumulated transpose)
  gb::Plus acc;
  gb::transpose(s.c, gb::no_mask, acc, s.c.dup());
  {
    auto dcc = s.dc;
    ref::transpose(s.dc, no_mmask, &acc, dcc, gb::desc_default);
  }
  s.expect_synced("transpose-accum");

  // 3. w = C min.+ u, masked by u complemented
  {
    gb::Descriptor d = gb::desc_c;
    gb::mxv(s.w, s.u, gb::no_accum, gb::min_plus<double>(), s.c, s.u, d);
    ref::mxv(s.dw, &s.du, no_acc, gb::min_plus<double>(), s.dc, s.du, d);
  }
  s.expect_synced("masked mxv");

  // 4. C = select(C > 0), then C = C .* A under mask B (structural)
  {
    gb::Matrix<double> t(11, 11);
    gb::select(t, gb::no_mask, gb::no_accum, gb::SelValueGt{}, s.c, 0.0);
    ref::DenseMat<double> dt(11, 11);
    ref::select(dt, no_mmask, no_acc, gb::SelValueGt{}, s.dc, 0.0,
                gb::desc_default);
    gb::ewise_mult(s.c, s.b, gb::no_accum, gb::Times{}, t, s.a, gb::desc_s);
    ref::ewise_mult(s.dc, &s.db, no_acc, gb::Times{}, dt, s.da, gb::desc_s);
  }
  s.expect_synced("select + masked ewise");

  // 5. row reduce with accumulation
  gb::reduce(s.w, gb::no_mask, acc, gb::plus_monoid<double>(), s.c);
  ref::reduce(s.dw, no_vmask, &acc, gb::plus_monoid<double>(), s.dc,
              gb::desc_default);
  s.expect_synced("reduce-accum");

  // 6. assign a scalar through the w-derived mask with replace
  {
    gb::Descriptor d = gb::desc_r;
    gb::assign_scalar(s.w, s.u, gb::no_accum, 3.25,
                      gb::IndexSel::all(s.w.size()), d);
    std::vector<Index> all(s.w.size());
    for (Index i = 0; i < s.w.size(); ++i) all[i] = i;
    ref::assign_scalar(s.dw, &s.du, no_acc, 3.25, all, d);
  }
  s.expect_synced("masked scalar assign");

  // 7. scalar reductions agree
  EXPECT_DOUBLE_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), s.c),
                   ref::reduce_scalar(gb::plus_monoid<double>(), s.dc));
}

}  // namespace

class ConformanceChain : public ::testing::TestWithParam<int> {};

TEST_P(ConformanceChain, OperationPipelineStaysInLockstep) {
  Lockstep s(4000 + GetParam() * 107);
  run_pipeline(s);
}

TEST_P(ConformanceChain, PipelineInLockstepWithBitmapForms) {
  Lockstep s(4000 + GetParam() * 107);
  for (auto* m : {&s.a, &s.b, &s.c}) m->set_format(gb::FormatMode::bitmap);
  for (auto* v : {&s.u, &s.w}) v->set_format(gb::FormatMode::bitmap);
  run_pipeline(s);
}

TEST_P(ConformanceChain, PipelineInLockstepWithFullPreference) {
  Lockstep s(4000 + GetParam() * 107);
  // Random patterns have holes, so the full preference lands on bitmap —
  // the degradation path itself is what this leg exercises.
  for (auto* m : {&s.a, &s.b, &s.c}) m->set_format(gb::FormatMode::full);
  for (auto* v : {&s.u, &s.w}) v->set_format(gb::FormatMode::full);
  run_pipeline(s);
}

// Randomized single ops with randomized descriptors — a fuzz layer over the
// directed sweeps in the per-op test files.
TEST_P(ConformanceChain, RandomizedOpFuzz) {
  std::mt19937_64 rng(9000 + GetParam());
  const gb::Plus* no_acc = nullptr;
  gb::Plus acc;

  for (int round = 0; round < 30; ++round) {
    std::uint64_t seed = rng();
    gb::Descriptor d;
    d.replace = rng() & 1;
    d.mask_complement = rng() & 1;
    d.mask_structural = rng() & 1;
    d.transpose_a = rng() & 1;
    d.transpose_b = rng() & 1;
    bool use_accum = rng() & 1;
    int op = static_cast<int>(rng() % 8);

    auto a = random_matrix(8, 8, 0.4, seed);
    auto b = random_matrix(8, 8, 0.4, seed + 1);
    auto m = random_matrix(8, 8, 0.5, seed + 2);
    auto c = random_matrix(8, 8, 0.3, seed + 3);
    auto da = ref::from_gb(a);
    auto db = ref::from_gb(b);
    auto dm = ref::from_gb(m);
    auto dc = ref::from_gb(c);

    // Distinct indices: assign with duplicate indices is undefined by the
    // spec, so conformance cannot be asserted there.
    std::vector<Index> pool = {0, 1, 2, 3, 4, 5, 6, 7};
    std::shuffle(pool.begin(), pool.end(), rng);
    std::vector<Index> isel(pool.begin(), pool.begin() + 3);
    std::shuffle(pool.begin(), pool.end(), rng);
    std::vector<Index> jsel(pool.begin(), pool.begin() + 3);

    switch (op) {
      case 0:
        if (use_accum) {
          gb::mxm(c, m, acc, gb::plus_times<double>(), a, b, d);
          ref::mxm(dc, &dm, &acc, gb::plus_times<double>(), da, db, d);
        } else {
          gb::mxm(c, m, gb::no_accum, gb::plus_times<double>(), a, b, d);
          ref::mxm(dc, &dm, no_acc, gb::plus_times<double>(), da, db, d);
        }
        break;
      case 1:
        if (use_accum) {
          gb::ewise_add(c, m, acc, gb::Max{}, a, b, d);
          ref::ewise_add(dc, &dm, &acc, gb::Max{}, da, db, d);
        } else {
          gb::ewise_add(c, m, gb::no_accum, gb::Max{}, a, b, d);
          ref::ewise_add(dc, &dm, no_acc, gb::Max{}, da, db, d);
        }
        break;
      case 2:
        if (use_accum) {
          gb::apply(c, m, acc, gb::Ainv{}, a, d);
          ref::apply(dc, &dm, &acc, gb::Ainv{}, da, d);
        } else {
          gb::apply(c, m, gb::no_accum, gb::Ainv{}, a, d);
          ref::apply(dc, &dm, no_acc, gb::Ainv{}, da, d);
        }
        break;
      case 3:
        if (use_accum) {
          gb::transpose(c, m, acc, a, d);
          ref::transpose(dc, &dm, &acc, da, d);
        } else {
          gb::transpose(c, m, gb::no_accum, a, d);
          ref::transpose(dc, &dm, no_acc, da, d);
        }
        break;
      case 4:  // select with a random tril/value predicate
        if (rng() & 1) {
          auto thunk = static_cast<std::int64_t>(rng() % 5) - 2;
          gb::select(c, m, gb::no_accum, gb::SelTril{}, a, thunk, d);
          ref::select(dc, &dm, no_acc, gb::SelTril{}, da, thunk, d);
        } else {
          gb::select(c, m, gb::no_accum, gb::SelValueGt{}, a, 0.0, d);
          ref::select(dc, &dm, no_acc, gb::SelValueGt{}, da, 0.0, d);
        }
        break;
      case 5: {  // extract into a small output
        auto c2 = random_matrix(3, 3, 0.3, seed + 4);
        auto dc2 = ref::from_gb(c2);
        auto m2 = random_matrix(3, 3, 0.5, seed + 5);
        auto dm2 = ref::from_gb(m2);
        if (use_accum) {
          gb::extract(c2, m2, acc, a, gb::IndexSel(isel), gb::IndexSel(jsel),
                      d);
          ref::extract(dc2, &dm2, &acc, da, isel, jsel, d);
        } else {
          gb::extract(c2, m2, gb::no_accum, a, gb::IndexSel(isel),
                      gb::IndexSel(jsel), d);
          ref::extract(dc2, &dm2, no_acc, da, isel, jsel, d);
        }
        EXPECT_TRUE(ref::equal(dc2, c2))
            << "round=" << round << " extract desc=" << desc_name(d);
        continue;
      }
      case 6: {  // assign a small block
        auto sub = random_matrix(3, 3, 0.6, seed + 6);
        auto dsub = ref::from_gb(sub);
        gb::Descriptor d2 = d;  // assign ignores input transposes here
        d2.transpose_a = false;
        d2.transpose_b = false;
        if (use_accum) {
          gb::assign(c, m, acc, sub, gb::IndexSel(isel), gb::IndexSel(jsel),
                     d2);
          ref::assign(dc, &dm, &acc, dsub, isel, jsel, d2);
        } else {
          gb::assign(c, m, gb::no_accum, sub, gb::IndexSel(isel),
                     gb::IndexSel(jsel), d2);
          ref::assign(dc, &dm, no_acc, dsub, isel, jsel, d2);
        }
        break;
      }
      default:
        if (use_accum) {
          gb::ewise_mult(c, m, acc, gb::Min{}, a, b, d);
          ref::ewise_mult(dc, &dm, &acc, gb::Min{}, da, db, d);
        } else {
          gb::ewise_mult(c, m, gb::no_accum, gb::Min{}, a, b, d);
          ref::ewise_mult(dc, &dm, no_acc, gb::Min{}, da, db, d);
        }
        break;
    }
    EXPECT_TRUE(ref::equal(dc, c))
        << "round=" << round << " op=" << op << " desc=" << desc_name(d)
        << " accum=" << use_accum;
  }
}

// Vector-op fuzz: the vector surface gets the same randomized treatment.
TEST_P(ConformanceChain, RandomizedVectorOpFuzz) {
  std::mt19937_64 rng(11000 + GetParam());
  const gb::Plus* no_acc = nullptr;
  gb::Plus acc;

  for (int round = 0; round < 40; ++round) {
    std::uint64_t seed = rng();
    gb::Descriptor d;
    d.replace = rng() & 1;
    d.mask_complement = rng() & 1;
    d.mask_structural = rng() & 1;
    d.transpose_a = rng() & 1;
    bool use_accum = rng() & 1;
    int op = static_cast<int>(rng() % 6);

    auto u = random_vector(12, 0.5, seed);
    auto v = random_vector(12, 0.5, seed + 1);
    auto m = random_vector(12, 0.5, seed + 2);
    auto w = random_vector(12, 0.3, seed + 3);
    auto a = random_matrix(12, 12, 0.3, seed + 4);
    auto du = ref::from_gb(u);
    auto dv = ref::from_gb(v);
    auto dm = ref::from_gb(m);
    auto dw = ref::from_gb(w);
    auto da = ref::from_gb(a);

    std::vector<Index> pool(12);
    for (Index i = 0; i < 12; ++i) pool[i] = i;
    std::shuffle(pool.begin(), pool.end(), rng);
    std::vector<Index> isel(pool.begin(), pool.begin() + 5);

    switch (op) {
      case 0:
        if (use_accum) {
          gb::ewise_add(w, m, acc, gb::Max{}, u, v, d);
          ref::ewise_add(dw, &dm, &acc, gb::Max{}, du, dv, d);
        } else {
          gb::ewise_add(w, m, gb::no_accum, gb::Max{}, u, v, d);
          ref::ewise_add(dw, &dm, no_acc, gb::Max{}, du, dv, d);
        }
        break;
      case 1:
        if (use_accum) {
          gb::ewise_mult(w, m, acc, gb::Times{}, u, v, d);
          ref::ewise_mult(dw, &dm, &acc, gb::Times{}, du, dv, d);
        } else {
          gb::ewise_mult(w, m, gb::no_accum, gb::Times{}, u, v, d);
          ref::ewise_mult(dw, &dm, no_acc, gb::Times{}, du, dv, d);
        }
        break;
      case 2:
        if (use_accum) {
          gb::apply(w, m, acc, gb::Ainv{}, u, d);
          ref::apply(dw, &dm, &acc, gb::Ainv{}, du, d);
        } else {
          gb::apply(w, m, gb::no_accum, gb::Ainv{}, u, d);
          ref::apply(dw, &dm, no_acc, gb::Ainv{}, du, d);
        }
        break;
      case 3: {
        // mxv with random push/pull choice.
        d.mxv = (rng() & 1) ? gb::MxvMethod::push : gb::MxvMethod::pull;
        if (use_accum) {
          gb::mxv(w, m, acc, gb::plus_times<double>(), a, u, d);
          ref::mxv(dw, &dm, &acc, gb::plus_times<double>(), da, du, d);
        } else {
          gb::mxv(w, m, gb::no_accum, gb::plus_times<double>(), a, u, d);
          ref::mxv(dw, &dm, no_acc, gb::plus_times<double>(), da, du, d);
        }
        break;
      }
      case 4: {
        auto w5 = random_vector(5, 0.4, seed + 5);
        auto dw5 = ref::from_gb(w5);
        auto m5 = random_vector(5, 0.5, seed + 6);
        auto dm5 = ref::from_gb(m5);
        if (use_accum) {
          gb::extract(w5, m5, acc, u, gb::IndexSel(isel), d);
          ref::extract(dw5, &dm5, &acc, du, isel, d);
        } else {
          gb::extract(w5, m5, gb::no_accum, u, gb::IndexSel(isel), d);
          ref::extract(dw5, &dm5, no_acc, du, isel, d);
        }
        EXPECT_TRUE(ref::equal(dw5, w5))
            << "round=" << round << " v-extract " << desc_name(d);
        continue;
      }
      default: {
        auto sub = random_vector(5, 0.6, seed + 7);
        auto dsub = ref::from_gb(sub);
        if (use_accum) {
          gb::assign(w, m, acc, sub, gb::IndexSel(isel), d);
          ref::assign(dw, &dm, &acc, dsub, isel, d);
        } else {
          gb::assign(w, m, gb::no_accum, sub, gb::IndexSel(isel), d);
          ref::assign(dw, &dm, no_acc, dsub, isel, d);
        }
        break;
      }
    }
    EXPECT_TRUE(ref::equal(dw, w))
        << "round=" << round << " op=" << op << " desc=" << desc_name(d)
        << " accum=" << use_accum;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConformanceChain, ::testing::Range(0, 6));
