// Sparse DNN inference vs a dense hand computation.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"

using gb::Index;
using namespace lagraph;

namespace {

/// Dense reference: Y <- clip(ReLU(Y W + b)).
std::vector<std::vector<double>> dense_dnn(
    std::vector<std::vector<double>> y,
    const std::vector<std::vector<std::vector<double>>>& ws,
    const std::vector<double>& bias, double ymax) {
  for (std::size_t l = 0; l < ws.size(); ++l) {
    const auto& w = ws[l];
    std::vector<std::vector<double>> z(y.size(),
                                       std::vector<double>(w[0].size(), 0.0));
    for (std::size_t i = 0; i < y.size(); ++i) {
      for (std::size_t k = 0; k < w.size(); ++k) {
        if (y[i][k] == 0.0) continue;
        for (std::size_t j = 0; j < w[0].size(); ++j) {
          z[i][j] += y[i][k] * w[k][j];
        }
      }
    }
    for (auto& row : z) {
      for (auto& v : row) {
        // Bias applies only where the product produced a value; zero
        // accumulations and zero entries are indistinguishable densely, so
        // treat exact zero as "no entry" (inputs are generated nonzero).
        if (v != 0.0) v = std::min(std::max(v + bias[l], 0.0), ymax);
        if (v < 0.0) v = 0.0;
      }
    }
    y = std::move(z);
  }
  return y;
}

gb::Matrix<double> from_dense(const std::vector<std::vector<double>>& d) {
  gb::Matrix<double> a(d.size(), d[0].size());
  for (Index i = 0; i < d.size(); ++i)
    for (Index j = 0; j < d[0].size(); ++j)
      if (d[i][j] != 0.0) a.set_element(i, j, d[i][j]);
  return a;
}

}  // namespace

TEST(Dnn, MatchesDenseReference) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> wv(0.1, 1.0);
  std::bernoulli_distribution keep(0.3);

  const Index batch = 12, neurons = 16, layers = 3;
  std::vector<std::vector<double>> y0(batch,
                                      std::vector<double>(neurons, 0.0));
  for (auto& row : y0)
    for (auto& v : row)
      if (keep(rng)) v = wv(rng);

  std::vector<std::vector<std::vector<double>>> ws;
  std::vector<gb::Matrix<double>> gws;
  std::vector<double> biases;
  for (Index l = 0; l < layers; ++l) {
    std::vector<std::vector<double>> w(neurons,
                                       std::vector<double>(neurons, 0.0));
    for (auto& row : w)
      for (auto& v : row)
        if (keep(rng)) v = wv(rng);
    ws.push_back(w);
    gws.push_back(from_dense(w));
    biases.push_back(-0.3);
  }

  auto got = dnn_inference(from_dense(y0), gws, biases, 32.0);
  auto want = dense_dnn(y0, ws, biases, 32.0);

  for (Index i = 0; i < batch; ++i) {
    for (Index j = 0; j < neurons; ++j) {
      auto e = got.extract_element(i, j);
      if (want[i][j] > 0.0) {
        ASSERT_TRUE(e.has_value()) << i << "," << j;
        EXPECT_NEAR(*e, want[i][j], 1e-9);
      } else {
        EXPECT_FALSE(e.has_value()) << i << "," << j;
      }
    }
  }
}

TEST(Dnn, ReluPrunesAndSparsifies) {
  // A strongly negative bias must empty the activations.
  gb::Matrix<double> y0(2, 2);
  y0.set_element(0, 0, 1.0);
  gb::Matrix<double> w = gb::Matrix<double>::identity(2, 1.0);
  auto out = dnn_inference(y0, {w}, {-10.0});
  EXPECT_EQ(out.nvals(), 0u);
}

TEST(Dnn, ClipCapsValues) {
  gb::Matrix<double> y0(1, 1);
  y0.set_element(0, 0, 100.0);
  gb::Matrix<double> w = gb::Matrix<double>::identity(1, 100.0);
  auto out = dnn_inference(y0, {w}, {0.0}, 32.0);
  EXPECT_EQ(out.extract_element(0, 0).value(), 32.0);
}

TEST(Dnn, ValidatesShapes) {
  gb::Matrix<double> y0(2, 3);
  gb::Matrix<double> w(4, 4);
  EXPECT_THROW(dnn_inference(y0, {w}, {0.0}), gb::Error);
  EXPECT_THROW(dnn_inference(y0, {w}, {}), gb::Error);
}

TEST(Dnn, MultiLayerChainShrinksOrGrows) {
  // Rectangular layers: 4 -> 8 -> 2.
  auto y0 = random_matrix(5, 4, 10, 1);
  gb::apply(y0, gb::no_mask, gb::no_accum, gb::Abs{}, y0);
  auto w1 = random_matrix(4, 8, 16, 2);
  gb::apply(w1, gb::no_mask, gb::no_accum, gb::Abs{}, w1);
  auto w2 = random_matrix(8, 2, 8, 3);
  gb::apply(w2, gb::no_mask, gb::no_accum, gb::Abs{}, w2);
  auto out = dnn_inference(y0, {w1, w2}, {0.0, 0.0});
  EXPECT_EQ(out.nrows(), 5u);
  EXPECT_EQ(out.ncols(), 2u);
}
