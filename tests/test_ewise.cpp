// eWiseAdd (union) and eWiseMult (intersection) vs the dense mimics.
#include <gtest/gtest.h>

#include "test_common.hpp"

using namespace testutil;
using gb::Index;

class EwiseSweep : public ::testing::TestWithParam<int> {};

TEST_P(EwiseSweep, VectorAddAndMultMatchMimic) {
  std::uint64_t seed = 100 + GetParam() * 31;
  auto u = random_vector(30, 0.5, seed);
  auto v = random_vector(30, 0.5, seed + 1);
  auto du = ref::from_gb(u);
  auto dv = ref::from_gb(v);

  for (const auto& d : mask_descriptor_sweep()) {
    auto mask = random_vector(30, 0.5, seed + 2);
    auto dmask = ref::from_gb(mask);

    gb::Vector<double> w = random_vector(30, 0.3, seed + 3);
    auto dw = ref::from_gb(w);
    gb::ewise_add(w, mask, gb::no_accum, gb::Plus{}, u, v, d);
    ref::ewise_add(dw, &dmask, static_cast<const gb::Plus*>(nullptr),
                   gb::Plus{}, du, dv, d);
    EXPECT_TRUE(ref::equal(dw, w)) << "add " << desc_name(d);

    gb::Vector<double> w2 = random_vector(30, 0.3, seed + 4);
    auto dw2 = ref::from_gb(w2);
    gb::Plus acc;
    gb::ewise_mult(w2, mask, acc, gb::Times{}, u, v, d);
    ref::ewise_mult(dw2, &dmask, &acc, gb::Times{}, du, dv, d);
    EXPECT_TRUE(ref::equal(dw2, w2)) << "mult " << desc_name(d);
  }
}

TEST_P(EwiseSweep, MatrixAddAndMultMatchMimic) {
  std::uint64_t seed = 500 + GetParam() * 37;
  // Square so the transpose sweep keeps shapes compatible.
  auto a = random_matrix(10, 10, 0.4, seed);
  auto b = random_matrix(10, 10, 0.4, seed + 1);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);

  for (auto d : mask_descriptor_sweep()) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        d.transpose_a = ta;
        d.transpose_b = tb;
        auto mask = random_matrix(10, 10, 0.4, seed + 2);
        auto dmask = ref::from_gb(mask);

        gb::Matrix<double> c = random_matrix(10, 10, 0.2, seed + 3);
        auto dc = ref::from_gb(c);
        gb::ewise_add(c, mask, gb::no_accum, gb::Min{}, a, b, d);
        ref::ewise_add(dc, &dmask, static_cast<const gb::Plus*>(nullptr),
                       gb::Min{}, da, db, d);
        EXPECT_TRUE(ref::equal(dc, c)) << "add " << desc_name(d);

        gb::Matrix<double> c2 = random_matrix(10, 10, 0.2, seed + 4);
        auto dc2 = ref::from_gb(c2);
        gb::ewise_mult(c2, mask, gb::no_accum, gb::Times{}, a, b, d);
        ref::ewise_mult(dc2, &dmask, static_cast<const gb::Plus*>(nullptr),
                        gb::Times{}, da, db, d);
        EXPECT_TRUE(ref::equal(dc2, c2)) << "mult " << desc_name(d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EwiseSweep, ::testing::Range(0, 4));

TEST(Ewise, UnionAndIntersectionPatterns) {
  gb::Vector<double> u(5), v(5);
  u.set_element(0, 1.0);
  u.set_element(2, 2.0);
  v.set_element(2, 10.0);
  v.set_element(4, 20.0);

  gb::Vector<double> add(5);
  gb::ewise_add(add, gb::no_mask, gb::no_accum, gb::Plus{}, u, v);
  EXPECT_EQ(add.nvals(), 3u);
  EXPECT_EQ(add.extract_element(0).value(), 1.0);
  EXPECT_EQ(add.extract_element(2).value(), 12.0);
  EXPECT_EQ(add.extract_element(4).value(), 20.0);

  gb::Vector<double> mult(5);
  gb::ewise_mult(mult, gb::no_mask, gb::no_accum, gb::Times{}, u, v);
  EXPECT_EQ(mult.nvals(), 1u);
  EXPECT_EQ(mult.extract_element(2).value(), 20.0);
}

TEST(Ewise, MixedTypesTypecast) {
  gb::Vector<std::int64_t> u(3);
  u.set_element(0, 3);
  gb::Vector<double> v(3);
  v.set_element(0, 0.5);
  gb::Vector<double> w(3);
  gb::ewise_mult(w, gb::no_mask, gb::no_accum,
                 [](std::int64_t a, double b) { return a * b; }, u, v);
  EXPECT_EQ(w.extract_element(0).value(), 1.5);
}

TEST(Ewise, DimensionMismatchThrows) {
  gb::Vector<double> u(3), v(4), w(3);
  EXPECT_THROW(gb::ewise_add(w, gb::no_mask, gb::no_accum, gb::Plus{}, u, v),
               gb::Error);
}
