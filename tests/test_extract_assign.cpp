// extract (sub-vector / sub-matrix / column) and assign (vector, matrix,
// scalar expansion) vs the dense mimics, including the tricky
// region-accumulate-then-global-mask rule of GrB_assign.
#include <gtest/gtest.h>

#include "lagraph/util/check.hpp"
#include "test_common.hpp"

using namespace testutil;
using gb::Index;

class ExtractAssignSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExtractAssignSweep, VectorExtractMatchesMimic) {
  std::uint64_t seed = 1500 + GetParam() * 61;
  auto u = random_vector(30, 0.5, seed);
  auto du = ref::from_gb(u);
  std::vector<Index> isel = {5, 2, 28, 2, 11, 0};  // unsorted with repeats

  for (const auto& d : mask_descriptor_sweep()) {
    auto m = random_vector(isel.size(), 0.5, seed + 1);
    auto dm = ref::from_gb(m);
    gb::Vector<double> w = random_vector(isel.size(), 0.3, seed + 2);
    auto dw = ref::from_gb(w);
    gb::extract(w, m, gb::no_accum, u, gb::IndexSel(isel), d);
    ref::extract(dw, &dm, static_cast<const gb::Plus*>(nullptr), du, isel, d);
    EXPECT_TRUE(ref::equal(dw, w)) << desc_name(d);
  }
}

TEST_P(ExtractAssignSweep, MatrixExtractMatchesMimic) {
  std::uint64_t seed = 1700 + GetParam() * 67;
  auto a = random_matrix(12, 12, 0.45, seed);
  auto da = ref::from_gb(a);
  std::vector<Index> isel = {3, 0, 9, 3};
  std::vector<Index> jsel = {11, 2, 2, 7, 5};

  for (auto d : mask_descriptor_sweep()) {
    for (bool ta : {false, true}) {
      d.transpose_a = ta;
      auto m = random_matrix(isel.size(), jsel.size(), 0.5, seed + 1);
      auto dm = ref::from_gb(m);
      gb::Matrix<double> c = random_matrix(isel.size(), jsel.size(), 0.3,
                                           seed + 2);
      auto dc = ref::from_gb(c);
      gb::extract(c, m, gb::no_accum, a, gb::IndexSel(isel),
                  gb::IndexSel(jsel), d);
      ref::extract(dc, &dm, static_cast<const gb::Plus*>(nullptr), da, isel,
                   jsel, d);
      EXPECT_TRUE(ref::equal(dc, c)) << desc_name(d);
    }
  }
}

TEST_P(ExtractAssignSweep, VectorAssignMatchesMimic) {
  std::uint64_t seed = 1900 + GetParam() * 71;
  std::vector<Index> isel = {4, 9, 0, 17};
  auto u = random_vector(isel.size(), 0.7, seed);
  auto du = ref::from_gb(u);

  for (const auto& d : mask_descriptor_sweep()) {
    for (bool accum : {false, true}) {
      auto m = random_vector(20, 0.5, seed + 1);
      auto dm = ref::from_gb(m);
      auto w = random_vector(20, 0.5, seed + 2);
      auto dw = ref::from_gb(w);
      gb::Plus acc;
      if (accum) {
        gb::assign(w, m, acc, u, gb::IndexSel(isel), d);
        ref::assign(dw, &dm, &acc, du, isel, d);
      } else {
        gb::assign(w, m, gb::no_accum, u, gb::IndexSel(isel), d);
        ref::assign(dw, &dm, static_cast<const gb::Plus*>(nullptr), du, isel,
                    d);
      }
      EXPECT_TRUE(ref::equal(dw, w))
          << desc_name(d) << " accum=" << accum;
    }
  }
}

TEST_P(ExtractAssignSweep, MatrixAssignMatchesMimic) {
  std::uint64_t seed = 2100 + GetParam() * 73;
  std::vector<Index> isel = {1, 6, 3};
  std::vector<Index> jsel = {7, 0, 4, 2};
  auto a = random_matrix(isel.size(), jsel.size(), 0.6, seed);
  auto da = ref::from_gb(a);

  for (const auto& d : mask_descriptor_sweep()) {
    for (bool accum : {false, true}) {
      auto m = random_matrix(8, 8, 0.5, seed + 1);
      auto dm = ref::from_gb(m);
      auto c = random_matrix(8, 8, 0.5, seed + 2);
      auto dc = ref::from_gb(c);
      gb::Plus acc;
      if (accum) {
        gb::assign(c, m, acc, a, gb::IndexSel(isel), gb::IndexSel(jsel), d);
        ref::assign(dc, &dm, &acc, da, isel, jsel, d);
      } else {
        gb::assign(c, m, gb::no_accum, a, gb::IndexSel(isel),
                   gb::IndexSel(jsel), d);
        ref::assign(dc, &dm, static_cast<const gb::Plus*>(nullptr), da, isel,
                    jsel, d);
      }
      EXPECT_TRUE(ref::equal(dc, c)) << desc_name(d) << " accum=" << accum;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractAssignSweep, ::testing::Range(0, 4));

TEST(Extract, AllIndicesIsCopy) {
  auto u = random_vector(15, 0.5, 31);
  gb::Vector<double> w(15);
  gb::extract(w, gb::no_mask, gb::no_accum, u, gb::IndexSel::all(15));
  EXPECT_TRUE(lagraph::isequal(u, w));
}

TEST(Extract, ColumnExtract) {
  gb::Matrix<double> a(4, 3);
  a.set_element(0, 1, 1.0);
  a.set_element(2, 1, 3.0);
  a.set_element(3, 0, 9.0);
  gb::Vector<double> w(4);
  gb::extract_col(w, gb::no_mask, gb::no_accum, a, gb::IndexSel::all(4), 1);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.extract_element(2).value(), 3.0);

  // Sub-indexed column with transpose: column 2 of A' = row 2 of A.
  a.set_element(2, 2, 5.0);
  std::vector<Index> isel = {2, 1};
  gb::Vector<double> w2(2);
  gb::extract_col(w2, gb::no_mask, gb::no_accum, a, gb::IndexSel(isel), 2,
                  gb::desc_t0);
  EXPECT_EQ(w2.extract_element(0).value(), 5.0);  // A(2,2)
  EXPECT_EQ(w2.extract_element(1).value(), 3.0);  // A(2,1)
}

TEST(Assign, ScalarExpansionVector) {
  gb::Vector<double> w(6);
  w.set_element(0, 1.0);
  std::vector<Index> isel = {1, 3};
  gb::assign_scalar(w, gb::no_mask, gb::no_accum, 7.0, gb::IndexSel(isel));
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.extract_element(1).value(), 7.0);
  EXPECT_EQ(w.extract_element(3).value(), 7.0);
  EXPECT_EQ(w.extract_element(0).value(), 1.0);

  // With accumulate.
  gb::assign_scalar(w, gb::no_mask, gb::Plus{}, 1.0, gb::IndexSel(isel));
  EXPECT_EQ(w.extract_element(1).value(), 8.0);
}

TEST(Assign, MaskedScalarAssignIsTheBfsIdiom) {
  // Fig. 2 line 5: levels[frontier] = depth.
  gb::Vector<std::int64_t> levels(8);
  gb::Vector<bool> frontier(8);
  frontier.set_element(2, true);
  frontier.set_element(5, true);
  gb::assign_scalar(levels, frontier, gb::no_accum, std::int64_t{3},
                    gb::IndexSel::all(8), gb::desc_s);
  EXPECT_EQ(levels.nvals(), 2u);
  EXPECT_EQ(levels.extract_element(2).value(), 3);
  EXPECT_EQ(levels.extract_element(5).value(), 3);
}

TEST(Assign, NoAccumDeletesRegionHoles) {
  // C(I) = A where A has no entry at a region position: entry deleted.
  gb::Vector<double> w(4);
  for (Index i = 0; i < 4; ++i) w.set_element(i, static_cast<double>(i + 1));
  gb::Vector<double> u(2);  // empty at k=0, value at k=1
  u.set_element(1, 99.0);
  std::vector<Index> isel = {0, 2};
  gb::assign(w, gb::no_mask, gb::no_accum, u, gb::IndexSel(isel));
  EXPECT_FALSE(w.extract_element(0).has_value());  // deleted
  EXPECT_EQ(w.extract_element(2).value(), 99.0);
  EXPECT_EQ(w.extract_element(1).value(), 2.0);  // outside region untouched
}

TEST(Assign, AccumKeepsRegionHoles) {
  gb::Vector<double> w(4);
  for (Index i = 0; i < 4; ++i) w.set_element(i, static_cast<double>(i + 1));
  gb::Vector<double> u(2);
  u.set_element(1, 99.0);
  std::vector<Index> isel = {0, 2};
  gb::assign(w, gb::no_mask, gb::Plus{}, u, gb::IndexSel(isel));
  EXPECT_EQ(w.extract_element(0).value(), 1.0);    // kept
  EXPECT_EQ(w.extract_element(2).value(), 102.0);  // 3 + 99
}

TEST(Assign, MatrixScalarExpansion) {
  gb::Matrix<double> c(5, 5);
  std::vector<Index> isel = {1, 3};
  std::vector<Index> jsel = {0, 4};
  gb::assign_scalar(c, gb::no_mask, gb::no_accum, 2.5, gb::IndexSel(isel),
                    gb::IndexSel(jsel));
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_EQ(c.extract_element(3, 4).value(), 2.5);
}
