// Allocation-fault soak harness (tentpole of the robustness PR).
//
// Every major operation is driven through the C API while
// gb::platform::Alloc is armed to fail the Nth allocation, for N = 0, 1, 2,
// ... until the operation survives injection. After each injected failure
// the harness asserts the full contract:
//
//   * the C boundary reports GrB_OUT_OF_MEMORY (the bad_alloc mapped by the
//     guarded wrapper) — never a crash, never a wrong code;
//   * every object involved still passes GxB_*_check at GxB_CHECK_FULL
//     (strong guarantee: no half-written structure escapes);
//   * the output object is bit-identical to its pre-call state;
//   * MemoryMeter::current_bytes() returns to the pre-call baseline — the
//     failed operation leaked nothing.
//
// Inputs are deliberately tiny (single-digit dimensions) so every kernel
// runs serially (far below the parallel thresholds) and the allocation
// sequence is deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "capi/graphblas_c.h"
#include "graphblas/graphblas.hpp"
#include "graphblas/validate.hpp"
#include "platform/alloc.hpp"
#include "platform/governor.hpp"
#include "platform/memory.hpp"
#include "platform/parallel.hpp"
#include "platform/workspace.hpp"
#include "test_common.hpp"

using gb::platform::Alloc;
using gb::platform::Governor;
using gb::platform::MemoryMeter;
using gb::platform::ScopedFailAfter;
using gb::platform::ScopedTripAfter;
using testutil::snapshot;

namespace {

// Objects the harness re-validates after every injected failure.
struct Watched {
  std::vector<GrB_Matrix> matrices;
  std::vector<GrB_Vector> vectors;
};

void expect_all_valid(const Watched& watched, const char* op, GrB_Index n) {
  for (GrB_Matrix m : watched.matrices) {
    EXPECT_EQ(GxB_Matrix_check(m, GxB_CHECK_FULL), GrB_SUCCESS)
        << op << " left a corrupt matrix after failing allocation " << n;
  }
  for (GrB_Vector v : watched.vectors) {
    EXPECT_EQ(GxB_Vector_check(v, GxB_CHECK_FULL), GrB_SUCCESS)
        << op << " left a corrupt vector after failing allocation " << n;
  }
}

// Drives `op` under fail-at-Nth injection until it completes cleanly.
// `out` is the output object (snapshot-compared on failure); extra watched
// objects (inputs, masks) are structurally validated too. Returns the N at
// which the operation first survived.
template <class Handle>
GrB_Index soak(const char* name, const std::function<GrB_Info()>& op,
               Handle out, const Watched& watched) {
  // Warm-up: one clean run so lazily-materialised input state (dual
  // orientation caches, dense/sparse representation flips) exists before
  // bytes are measured — a failed call may legitimately retain those
  // caches, but after warm-up a failure must be exactly memory-neutral.
  const GrB_Info warm = op();
  EXPECT_EQ(warm, GrB_SUCCESS) << name << " failed without injection";
  if (warm != GrB_SUCCESS) return 0;
  const auto before = snapshot(out);
  constexpr GrB_Index kMaxN = 100000;
  for (GrB_Index n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    GrB_Info info;
    {
      ScopedFailAfter guard(n);
      info = op();
    }
    if (info == GrB_SUCCESS) {
      EXPECT_GT(Alloc::total_allocations(), 0u);
      expect_all_valid(watched, name, n);
      return n;
    }
    EXPECT_EQ(info, GrB_OUT_OF_MEMORY)
        << name << " reported the wrong Info for allocation failure " << n;
    expect_all_valid(watched, name, n);
    EXPECT_EQ(snapshot(out), before)
        << name << " modified its output despite failing at allocation " << n;
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << name << " leaked metered bytes after failing at allocation " << n;
  }
  ADD_FAILURE() << name << " never completed under injection";
  return kMaxN;
}

// Shared fixture: small, settled inputs built once per test.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    Alloc::reset_counters();
    ASSERT_EQ(GrB_Matrix_new(&a_, 6, 6), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_new(&b_, 6, 6), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_new(&c_, 6, 6), GrB_SUCCESS);
    ASSERT_EQ(GrB_Vector_new(&u_, 6), GrB_SUCCESS);
    ASSERT_EQ(GrB_Vector_new(&w_, 6), GrB_SUCCESS);

    const GrB_Index ar[] = {0, 0, 1, 2, 3, 4, 5};
    const GrB_Index ac[] = {1, 4, 2, 0, 3, 5, 2};
    const double av[] = {1, 2, 3, 4, 5, 6, 7};
    ASSERT_EQ(GrB_Matrix_build_FP64(a_, ar, ac, av, 7, GrB_PLUS_FP64),
              GrB_SUCCESS);
    const GrB_Index br[] = {0, 1, 2, 4, 5};
    const GrB_Index bc[] = {2, 1, 3, 4, 0};
    const double bv[] = {2, -1, 4, 0.5, 3};
    ASSERT_EQ(GrB_Matrix_build_FP64(b_, br, bc, bv, 5, GrB_PLUS_FP64),
              GrB_SUCCESS);
    // A non-empty output so "unchanged on failure" is a real assertion.
    ASSERT_EQ(GrB_Matrix_setElement_FP64(c_, 42.0, 5, 5), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_wait(c_), GrB_SUCCESS);

    const GrB_Index ui[] = {0, 2, 5};
    const double uv[] = {1.0, -2.0, 3.0};
    ASSERT_EQ(GrB_Vector_build_FP64(u_, ui, uv, 3, GrB_PLUS_FP64),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_Vector_setElement_FP64(w_, 7.0, 1), GrB_SUCCESS);
    ASSERT_EQ(GrB_Vector_wait(w_), GrB_SUCCESS);
  }

  void TearDown() override {
    Alloc::disarm();
    GrB_Matrix_free(&a_);
    GrB_Matrix_free(&b_);
    GrB_Matrix_free(&c_);
    GrB_Vector_free(&u_);
    GrB_Vector_free(&w_);
  }

  Watched watch_all() const { return {{a_, b_, c_}, {u_, w_}}; }

  GrB_Matrix a_ = nullptr, b_ = nullptr, c_ = nullptr;
  GrB_Vector u_ = nullptr, w_ = nullptr;
};

}  // namespace

TEST_F(FaultInjection, Mxm) {
  soak(
      "mxm",
      [&] {
        return GrB_mxm(c_, nullptr, GrB_NULL_ACCUM,
                       GrB_PLUS_TIMES_SEMIRING_FP64, a_, b_, nullptr);
      },
      c_, watch_all());
}

TEST_F(FaultInjection, MxmMaskedAccum) {
  soak(
      "mxm<mask,accum>",
      [&] {
        return GrB_mxm(c_, b_, GrB_PLUS_FP64, GrB_PLUS_TIMES_SEMIRING_FP64,
                       a_, b_, nullptr);
      },
      c_, watch_all());
}

TEST_F(FaultInjection, Mxv) {
  soak(
      "mxv",
      [&] {
        return GrB_mxv(w_, nullptr, GrB_NULL_ACCUM,
                       GrB_PLUS_TIMES_SEMIRING_FP64, a_, u_, nullptr);
      },
      w_, watch_all());
}

TEST_F(FaultInjection, EwiseAddMatrix) {
  soak(
      "eWiseAdd",
      [&] {
        return GrB_Matrix_eWiseAdd(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_FP64,
                                   a_, b_, nullptr);
      },
      c_, watch_all());
}

TEST_F(FaultInjection, EwiseMultVector) {
  soak(
      "eWiseMult",
      [&] {
        return GrB_Vector_eWiseMult(w_, nullptr, GrB_NULL_ACCUM,
                                    GrB_TIMES_FP64, u_, u_, nullptr);
      },
      w_, watch_all());
}

TEST_F(FaultInjection, AssignScalarMasked) {
  soak(
      "assign",
      [&] {
        return GrB_Matrix_assign_FP64(c_, a_, GrB_NULL_ACCUM, 3.5, GrB_ALL, 6,
                                      GrB_ALL, 6, nullptr);
      },
      c_, watch_all());
}

TEST_F(FaultInjection, VectorAssignScalar) {
  soak(
      "vector assign",
      [&] {
        return GrB_Vector_assign_FP64(w_, u_, GrB_NULL_ACCUM, 2.0, GrB_ALL, 6,
                                      nullptr);
      },
      w_, watch_all());
}

TEST_F(FaultInjection, Extract) {
  const GrB_Index rows[] = {0, 2, 4};
  GrB_Matrix s = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&s, 3, 6), GrB_SUCCESS);
  soak(
      "extract",
      [&] {
        return GrB_Matrix_extract(s, nullptr, GrB_NULL_ACCUM, a_, rows, 3,
                                  GrB_ALL, 6, nullptr);
      },
      s, {{a_, s}, {}});
  GrB_Matrix_free(&s);
}

TEST_F(FaultInjection, ReduceToVector) {
  soak(
      "reduce",
      [&] {
        return GrB_Matrix_reduce_Vector(w_, nullptr, GrB_NULL_ACCUM,
                                        GrB_PLUS_MONOID_FP64, a_, nullptr);
      },
      w_, watch_all());
}

TEST_F(FaultInjection, Apply) {
  soak(
      "apply",
      [&] {
        return GrB_Vector_apply(w_, nullptr, GrB_NULL_ACCUM, GrB_ABS_FP64, u_,
                                nullptr);
      },
      w_, watch_all());
}

TEST_F(FaultInjection, Transpose) {
  soak(
      "transpose",
      [&] {
        return GrB_transpose(c_, nullptr, GrB_NULL_ACCUM, a_, nullptr);
      },
      c_, watch_all());
}

TEST_F(FaultInjection, Build) {
  // new + build together under injection: a fresh object per round, so a
  // failed round must free *everything* it allocated.
  const GrB_Index tr[] = {5, 0, 3, 0};
  const GrB_Index tc[] = {1, 4, 3, 4};
  const double tv[] = {1, 2, 3, 4};
  constexpr GrB_Index kMaxN = 100000;
  bool succeeded = false;
  for (GrB_Index n = 0; n < kMaxN && !succeeded; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    GrB_Matrix t = nullptr;
    GrB_Info info;
    {
      ScopedFailAfter guard(n);
      info = GrB_Matrix_new(&t, 6, 6);
      if (info == GrB_SUCCESS) {
        info = GrB_Matrix_build_FP64(t, tr, tc, tv, 4, GrB_PLUS_FP64);
      }
    }
    if (info == GrB_SUCCESS) {
      GrB_Index nv = 0;
      EXPECT_EQ(GrB_Matrix_nvals(&nv, t), GrB_SUCCESS);
      // (0,4) appears twice and is combined by GrB_PLUS_FP64.
      EXPECT_EQ(nv, 3u);
      EXPECT_EQ(GxB_Matrix_check(t, GxB_CHECK_FULL), GrB_SUCCESS);
      succeeded = true;
    } else {
      EXPECT_EQ(info, GrB_OUT_OF_MEMORY) << "build round " << n;
      if (t) {
        EXPECT_EQ(GxB_Matrix_check(t, GxB_CHECK_FULL), GrB_SUCCESS)
            << "failed build left a corrupt matrix at round " << n;
      }
    }
    GrB_Matrix_free(&t);
    if (!succeeded) {
      EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
          << "failed build round " << n << " leaked metered bytes";
    }
  }
  EXPECT_TRUE(succeeded) << "build never completed under injection";
}

TEST_F(FaultInjection, WaitWithPendingWork) {
  // setElement parks pending tuples; removeElement makes zombies; wait()
  // must survive injection mid-merge with both intact or fully applied.
  ASSERT_EQ(GrB_Matrix_setElement_FP64(a_, 9.0, 3, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_removeElement(a_, 0, 1), GrB_SUCCESS);
  // wait() cannot be warmed up (success consumes the pending work), and a
  // failed wait may legitimately commit a completed internal stage (the
  // zombie sweep) whose storage differs in size from what it replaced. The
  // leak assertion is therefore idempotence: failing at the same countdown
  // twice in a row must not consume additional bytes.
  constexpr GrB_Index kMaxN = 100000;
  for (GrB_Index n = 0; n < kMaxN; ++n) {
    GrB_Info info;
    {
      ScopedFailAfter guard(n);
      info = GrB_Matrix_wait(a_);
    }
    if (info == GrB_SUCCESS) break;
    ASSERT_EQ(info, GrB_OUT_OF_MEMORY);
    EXPECT_EQ(GxB_Matrix_check(a_, GxB_CHECK_FULL), GrB_SUCCESS)
        << "wait corrupted the matrix failing at allocation " << n;
    const std::size_t after_first = MemoryMeter::current_bytes();
    GrB_Info info2;
    {
      ScopedFailAfter guard(n);
      info2 = GrB_Matrix_wait(a_);
    }
    if (info2 == GrB_SUCCESS) break;
    ASSERT_EQ(info2, GrB_OUT_OF_MEMORY);
    EXPECT_EQ(MemoryMeter::current_bytes(), after_first)
        << "repeated failure at countdown " << n << " accumulated bytes";
    ASSERT_LT(n + 1, kMaxN) << "wait never completed under injection";
  }
  // Both the insertion and the deletion took effect exactly once.
  double x = 0.0;
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a_, 3, 1), GrB_SUCCESS);
  EXPECT_EQ(x, 9.0);
  EXPECT_EQ(GrB_Matrix_extractElement_FP64(&x, a_, 0, 1), GrB_NO_VALUE);
}

TEST_F(FaultInjection, ProbabilisticSoak) {
  // Random interleavings: every allocation fails with 10% probability under
  // a fixed seed. Whatever happens, no call may corrupt an object or leak.
  const std::size_t baseline = MemoryMeter::current_bytes();
  for (std::uint64_t round = 0; round < 30; ++round) {
    Alloc::fail_with_probability(0.10, 0x1234 + round);
    GrB_Info info = GrB_mxm(c_, nullptr, GrB_NULL_ACCUM,
                            GrB_PLUS_TIMES_SEMIRING_FP64, a_, b_, nullptr);
    Alloc::disarm();
    EXPECT_TRUE(info == GrB_SUCCESS || info == GrB_OUT_OF_MEMORY)
        << "round " << round << " returned " << info;
    expect_all_valid(watch_all(), "probabilistic mxm", round);
  }
  // With injection off the operation must succeed.
  ASSERT_EQ(GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a_, b_, nullptr),
            GrB_SUCCESS);
  EXPECT_GT(MemoryMeter::current_bytes(), 0u);
  (void)baseline;
}

TEST_F(FaultInjection, MeterTracksObjectLifetime) {
  const std::size_t before = MemoryMeter::current_bytes();
  {
    GrB_Matrix t = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&t, 64, 64), GrB_SUCCESS);
    const GrB_Index tr[] = {0, 9, 33};
    const GrB_Index tc[] = {5, 12, 63};
    const double tv[] = {1, 2, 3};
    ASSERT_EQ(GrB_Matrix_build_FP64(t, tr, tc, tv, 3, GrB_PLUS_FP64),
              GrB_SUCCESS);
    EXPECT_GT(MemoryMeter::current_bytes(), before)
        << "opaque-object storage is not feeding the meter";
    GrB_Matrix_free(&t);
  }
  EXPECT_EQ(MemoryMeter::current_bytes(), before)
      << "freeing the object did not return the meter to baseline";
}

TEST(FaultInjectionUnit, CountdownSemantics) {
  Alloc::reset_counters();
  {
    ScopedFailAfter guard(2);
    gb::Buf<double> ok1(8);   // allocation 1: succeeds
    gb::Buf<double> ok2(8);   // allocation 2: succeeds
    EXPECT_THROW(gb::Buf<double> boom(8), std::bad_alloc);   // 3: fails
    EXPECT_THROW(gb::Buf<double> boom2(8), std::bad_alloc);  // sticky
  }
  // Guard destroyed: injection off again.
  gb::Buf<double> fine(8);
  EXPECT_EQ(fine.size(), 8u);
  EXPECT_GE(Alloc::injected_failures(), 2u);
}

TEST(FaultInjectionUnit, ProbabilisticIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    Alloc::fail_with_probability(0.5, seed);
    std::string pattern;
    for (int k = 0; k < 32; ++k) {
      try {
        gb::Buf<char> b(16);
        pattern += 'S';
      } catch (const std::bad_alloc&) {
        pattern += 'F';
      }
    }
    Alloc::disarm();
    return pattern;
  };
  const auto p1 = run(99);
  const auto p2 = run(99);
  EXPECT_EQ(p1, p2) << "same seed must give the same failure sequence";
  EXPECT_NE(p1.find('F'), std::string::npos);
  EXPECT_NE(p1.find('S'), std::string::npos);
  EXPECT_NE(run(100), p1) << "different seeds should diverge";
}

// ---------------------------------------------------------------------------
// Kernel-scratch soaks: the same injection contract, driven through the C++
// API with the descriptor pinned to each mxm / mxv method, so every
// Workspace checkout site (gustavson acc/present/touched/row and per-chunk
// parts, the dot row buffer, the heap node store, push/pull per-chunk
// buffers) sits directly on the failure path. Workspace retention is part of
// the contract: after the clean warm-up the pools hold their peak per-site
// capacities, a failed run re-requests the same sizes, and an injected
// failure must therefore be exactly memory-neutral.

namespace {

struct CxxMatSnapshot {
  std::vector<gb::Index> r, c;
  std::vector<double> v;
  friend bool operator==(const CxxMatSnapshot&,
                         const CxxMatSnapshot&) = default;
};

CxxMatSnapshot cxx_snapshot(const gb::Matrix<double>& m) {
  CxxMatSnapshot s;
  m.extract_tuples(s.r, s.c, s.v);
  return s;
}

struct CxxVecSnapshot {
  std::vector<gb::Index> i;
  std::vector<double> v;
  friend bool operator==(const CxxVecSnapshot&,
                         const CxxVecSnapshot&) = default;
};

CxxVecSnapshot cxx_snapshot(const gb::Vector<double>& w) {
  CxxVecSnapshot s;
  w.extract_tuples(s.i, s.v);
  return s;
}

// C++-level analogue of soak(): `op` throws std::bad_alloc on an injected
// failure instead of returning GrB_OUT_OF_MEMORY.
template <class Out>
void cxx_soak(const char* name, const std::function<void()>& op,
              const Out& out) {
  ASSERT_NO_THROW(op()) << name << " failed without injection";
  const auto before = cxx_snapshot(out);
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    bool failed = false;
    {
      ScopedFailAfter guard(n);
      try {
        op();
      } catch (const std::bad_alloc&) {
        failed = true;
      }
    }
    if (!failed) return;  // survived injection: done
    EXPECT_TRUE(gb::check(out, gb::CheckLevel::full).ok())
        << name << " corrupted its output failing at allocation " << n;
    EXPECT_EQ(cxx_snapshot(out), before)
        << name << " modified its output despite failing at allocation " << n;
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << name << " leaked metered bytes after failing at allocation " << n;
  }
  ADD_FAILURE() << name << " never completed under injection";
}

class KernelScratchFault : public ::testing::Test {
 protected:
  void SetUp() override {
    Alloc::reset_counters();
    a_ = gb::Matrix<double>(6, 6);
    b_ = gb::Matrix<double>(6, 6);
    c_ = gb::Matrix<double>(6, 6);
    u_ = gb::Vector<double>(6);
    w_ = gb::Vector<double>(6);
    const gb::Index ar[] = {0, 0, 1, 2, 3, 4, 5};
    const gb::Index ac[] = {1, 4, 2, 0, 3, 5, 2};
    const double av[] = {1, 2, 3, 4, 5, 6, 7};
    for (int k = 0; k < 7; ++k) a_.set_element(ar[k], ac[k], av[k]);
    const gb::Index br[] = {0, 1, 2, 4, 5};
    const gb::Index bc[] = {2, 1, 3, 4, 0};
    const double bv[] = {2, -1, 4, 0.5, 3};
    for (int k = 0; k < 5; ++k) b_.set_element(br[k], bc[k], bv[k]);
    c_.set_element(5, 5, 42.0);
    u_.set_element(0, 1.0);
    u_.set_element(2, -2.0);
    u_.set_element(5, 3.0);
    w_.set_element(1, 7.0);
    a_.wait();
    b_.wait();
    c_.wait();
    u_.wait();
    w_.wait();
  }

  void TearDown() override {
    Alloc::disarm();
    EXPECT_TRUE(gb::check(a_, gb::CheckLevel::full).ok());
    EXPECT_TRUE(gb::check(b_, gb::CheckLevel::full).ok());
    EXPECT_TRUE(gb::check(u_, gb::CheckLevel::full).ok());
  }

  gb::Matrix<double> a_{1, 1}, b_{1, 1}, c_{1, 1};
  gb::Vector<double> u_{1}, w_{1};
};

}  // namespace

TEST_F(KernelScratchFault, MxmGustavson) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  cxx_soak(
      "mxm/gustavson",
      [&] {
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmDot) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::dot;
  cxx_soak(
      "mxm/dot",
      [&] {
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmHeap) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::heap;
  cxx_soak(
      "mxm/heap",
      [&] {
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmGustavsonMasked) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  cxx_soak(
      "mxm<mask>/gustavson",
      [&] {
        gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxvPush) {
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::push;
  cxx_soak(
      "mxv/push",
      [&] {
        gb::mxv(w_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                u_, d);
      },
      w_);
}

TEST_F(KernelScratchFault, MxvPull) {
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::pull;
  cxx_soak(
      "mxv/pull",
      [&] {
        gb::mxv(w_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                u_, d);
      },
      w_);
}

// --- forced multi-chunk soaks --------------------------------------------
// platform::ForcedChunks splits every chunked kernel into 3 cost-balanced
// chunks regardless of thread count or problem size, so the per-chunk
// workspace checkouts (and the exception trap that ferries an injected
// bad_alloc out of the OpenMP region) sit on the failure path even with
// these 6x6 fixtures. With one thread every chunk runs on the master, so
// pool warm-up stays deterministic and failures stay memory-neutral.

TEST_F(KernelScratchFault, MxmGustavsonTwoPassForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  cxx_soak(
      "mxm/gustavson forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmGustavsonMaskedForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  cxx_soak(
      "mxm<mask>/gustavson forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmDotMaskedForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::dot;
  cxx_soak(
      "mxm<mask>/dot forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmDotComplementedForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::dot;
  d.mask_complement = true;
  cxx_soak(
      "mxm<!mask>/dot forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxmHeapForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::heap;
  cxx_soak(
      "mxm/heap forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_);
}

TEST_F(KernelScratchFault, MxvPullForcedChunks) {
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::pull;
  cxx_soak(
      "mxv/pull forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxv(w_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                u_, d);
      },
      w_);
}

TEST_F(KernelScratchFault, EwiseMergeForcedChunks) {
  cxx_soak(
      "ewise_add matrix forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::ewise_add(c_, gb::no_mask, gb::no_accum, gb::Plus{}, a_, b_);
      },
      c_);
  cxx_soak(
      "ewise_mult matrix forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::ewise_mult(c_, gb::no_mask, gb::no_accum, gb::Times{}, a_, b_);
      },
      c_);
}

TEST_F(KernelScratchFault, SelectTwoPassForcedChunks) {
  cxx_soak(
      "select matrix forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::select(c_, gb::no_mask, gb::no_accum, gb::SelTril{}, a_,
                   std::int64_t{0});
      },
      c_);
}

TEST_F(KernelScratchFault, ApplyIndexopForcedChunks) {
  cxx_soak(
      "apply_indexop matrix forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::apply_indexop(
            c_, gb::no_mask, gb::no_accum,
            [](double v, gb::Index i, gb::Index j, std::int64_t t) {
              return v + static_cast<double>(i + j) + static_cast<double>(t);
            },
            a_, std::int64_t{2});
      },
      c_);
}

TEST_F(KernelScratchFault, ReduceVectorTwoPassForcedChunks) {
  cxx_soak(
      "reduce rows forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::reduce(w_, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(),
                   a_);
      },
      w_);
}

TEST_F(KernelScratchFault, ReduceScalarChunkedForcedChunks) {
  // The output is a value, not an object, so the generic soak does not
  // apply: assert the value is stable and failures stay memory-neutral.
  double warm;
  {
    gb::platform::ForcedChunks force(3);
    warm = gb::reduce_scalar(gb::plus_monoid<double>(), a_);
  }
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    bool failed = false;
    double got = 0.0;
    {
      ScopedFailAfter guard(n);
      gb::platform::ForcedChunks force(3);
      try {
        got = gb::reduce_scalar(gb::plus_monoid<double>(), a_);
      } catch (const std::bad_alloc&) {
        failed = true;
      }
    }
    if (!failed) {
      EXPECT_EQ(got, warm) << "countdown " << n;
      return;
    }
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << "failed scalar reduce at countdown " << n << " leaked bytes";
  }
  ADD_FAILURE() << "scalar reduce never completed under injection";
}

TEST_F(KernelScratchFault, TransposeBucketForcedChunks) {
  // A fresh duplicate per round so the by-column cache (which IS the
  // transpose result) cannot be served from warm-up; the 3-phase histogram
  // transpose re-runs — and can fail — on every round.
  cxx_soak(
      "transpose bucket forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        auto fresh = a_.dup();
        gb::transpose(c_, gb::no_mask, gb::no_accum, fresh);
      },
      c_);
}

TEST_F(KernelScratchFault, KroneckerTwoPassForcedChunks) {
  gb::Matrix<double> kc(36, 36);
  kc.set_element(35, 35, 1.5);
  kc.wait();
  cxx_soak(
      "kronecker forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::kronecker(kc, gb::no_mask, gb::no_accum, gb::Times{}, a_, b_);
      },
      kc);
}

TEST_F(KernelScratchFault, PoolsStopGrowingAcrossAllForcedPaths) {
  // Warm every forced-chunk path once, then repeat the whole battery:
  // cached workspace bytes must not grow — the pools reached their
  // steady-state capacities during warm-up.
  auto battery = [&] {
    gb::platform::ForcedChunks force(3);
    for (auto m : {gb::MxmMethod::gustavson, gb::MxmMethod::dot,
                   gb::MxmMethod::heap}) {
      gb::Descriptor d;
      d.mxm = m;
      gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_, b_,
              d);
      gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
    }
    gb::ewise_add(c_, gb::no_mask, gb::no_accum, gb::Plus{}, a_, b_);
    gb::select(c_, gb::no_mask, gb::no_accum, gb::SelTril{}, a_,
               std::int64_t{0});
    gb::reduce(w_, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(), a_);
    (void)gb::reduce_scalar(gb::plus_monoid<double>(), a_);
    auto fresh = a_.dup();
    gb::transpose(c_, gb::no_mask, gb::no_accum, fresh);
  };
  battery();  // warm
  const auto warm = gb::platform::Workspace::thread_stats();
  for (int round = 0; round < 3; ++round) battery();
  const auto after = gb::platform::Workspace::thread_stats();
  EXPECT_LE(after.cached_bytes, warm.cached_bytes)
      << "steady-state batteries grew the workspace pools";
  EXPECT_GT(after.reuses, warm.reuses)
      << "steady-state batteries are not reusing pooled buffers";
}

// --- kronecker dimension overflow at the C boundary ----------------------

TEST(KroneckerOverflow, CBoundaryMapsToIndexOutOfBounds) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr;
  const GrB_Index big = GrB_Index{1} << 40;
  ASSERT_EQ(GrB_Matrix_new(&a, big, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, big, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 4, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_kronecker(c, nullptr, GrB_NULL_ACCUM, GrB_TIMES_FP64, a, b,
                          nullptr),
            GrB_INDEX_OUT_OF_BOUNDS);
  const char* msg = nullptr;
  EXPECT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  EXPECT_NE(msg, nullptr);
  GrB_Matrix_free(&a);
  GrB_Matrix_free(&b);
  GrB_Matrix_free(&c);
}

TEST_F(FaultInjection, Kronecker) {
  GrB_Matrix kc = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&kc, 36, 36), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(kc, 9.0, 35, 35), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_wait(kc), GrB_SUCCESS);
  soak(
      "kronecker",
      [&] {
        return GrB_kronecker(kc, nullptr, GrB_NULL_ACCUM, GrB_TIMES_FP64, a_,
                             b_, nullptr);
      },
      kc, {{a_, b_, kc}, {}});
  GrB_Matrix_free(&kc);
}

TEST_F(KernelScratchFault, WorkspaceStaysWarmAcrossFailures) {
  // After the warm-up, repeated injected failures must not grow the pools:
  // every failed run requests capacities the warm run already established.
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  auto op = [&] {
    gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_, b_,
            d);
  };
  op();  // warm
  const auto warm_cached = gb::platform::Workspace::thread_stats().cached_bytes;
  for (std::uint64_t n = 0; n < 8; ++n) {
    ScopedFailAfter guard(n);
    try {
      op();
    } catch (const std::bad_alloc&) {
    }
    EXPECT_LE(gb::platform::Workspace::thread_stats().cached_bytes,
              warm_cached)
        << "failed run at countdown " << n << " grew the workspace pools";
  }
}

// ===========================================================================
// Governor soaks: the same transactional contract, with the trip coming from
// the execution governor instead of the allocator. Governor::trip_poll_after
// addresses every poll point by ordinal (exactly like Alloc::fail_after
// addresses every allocation), so for N = 0, 1, 2, ... the Nth poll throws a
// cancellation or deadline, the C boundary reports GxB_CANCELLED /
// GxB_TIMEOUT, and the output must be bit-identical to its pre-call snapshot
// with the meter back at baseline.

namespace {

// C-boundary governor soak: drives `op` with the fixture's context engaged
// and the Nth poll tripping as `kind`, until the op completes without
// hitting a tripped poll. Returns the N at which it first survived (== the
// number of poll points the op executes).
template <class Handle>
GrB_Index governor_soak(const char* name, const std::function<GrB_Info()>& op,
                        Handle out, const Watched& watched,
                        Governor::Trip kind, GrB_Info expected) {
  const GrB_Info warm = op();  // engaged but untripped: must still succeed
  EXPECT_EQ(warm, GrB_SUCCESS) << name << " failed under an idle governor";
  if (warm != GrB_SUCCESS) return 0;
  const auto before = snapshot(out);
  constexpr GrB_Index kMaxN = 100000;
  for (GrB_Index n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    GrB_Info info;
    {
      ScopedTripAfter trip(n, kind);
      info = op();
    }
    if (info == GrB_SUCCESS) {
      expect_all_valid(watched, name, n);
      return n;
    }
    EXPECT_EQ(info, expected)
        << name << " reported the wrong Info for a trip at poll " << n;
    expect_all_valid(watched, name, n);
    EXPECT_EQ(snapshot(out), before)
        << name << " modified its output despite tripping at poll " << n;
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << name << " leaked metered bytes after tripping at poll " << n;
  }
  ADD_FAILURE() << name << " never completed under poll trips";
  return kMaxN;
}

// Fixture: FaultInjection's objects plus an engaged GxB_Context, so every
// C call on this thread runs governed.
class GovernorFault : public FaultInjection {
 protected:
  void SetUp() override {
    FaultInjection::SetUp();
    ASSERT_EQ(GxB_Context_new(&ctx_), GrB_SUCCESS);
    ASSERT_EQ(GxB_Context_engage(ctx_), GrB_SUCCESS);
  }

  void TearDown() override {
    Governor::disarm_trips();
    EXPECT_EQ(GxB_Context_disengage(ctx_), GrB_SUCCESS);
    EXPECT_EQ(GxB_Context_free(&ctx_), GrB_SUCCESS);
    FaultInjection::TearDown();
  }

  GxB_Context ctx_ = nullptr;
};

}  // namespace

TEST_F(GovernorFault, MxmCancelledAtEveryPoll) {
  const GrB_Index polls = governor_soak(
      "mxm cancel",
      [&] {
        return GrB_mxm(c_, nullptr, GrB_NULL_ACCUM,
                       GrB_PLUS_TIMES_SEMIRING_FP64, a_, b_, nullptr);
      },
      c_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
  EXPECT_GT(polls, 0u) << "mxm executed no poll points";
}

TEST_F(GovernorFault, MxmDeadlineAtEveryPoll) {
  governor_soak(
      "mxm deadline",
      [&] {
        return GrB_mxm(c_, nullptr, GrB_NULL_ACCUM,
                       GrB_PLUS_TIMES_SEMIRING_FP64, a_, b_, nullptr);
      },
      c_, watch_all(), Governor::Trip::deadline, GxB_TIMEOUT);
}

TEST_F(GovernorFault, MxmMaskedAccumCancelled) {
  governor_soak(
      "mxm<mask,accum> cancel",
      [&] {
        return GrB_mxm(c_, b_, GrB_PLUS_FP64, GrB_PLUS_TIMES_SEMIRING_FP64,
                       a_, b_, nullptr);
      },
      c_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, MxvCancelled) {
  governor_soak(
      "mxv cancel",
      [&] {
        return GrB_mxv(w_, nullptr, GrB_NULL_ACCUM,
                       GrB_PLUS_TIMES_SEMIRING_FP64, a_, u_, nullptr);
      },
      w_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, EwiseAddCancelled) {
  governor_soak(
      "eWiseAdd cancel",
      [&] {
        return GrB_Matrix_eWiseAdd(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_FP64,
                                   a_, b_, nullptr);
      },
      c_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, AssignScalarMaskedDeadline) {
  governor_soak(
      "assign deadline",
      [&] {
        return GrB_Matrix_assign_FP64(c_, a_, GrB_NULL_ACCUM, 3.5, GrB_ALL, 6,
                                      GrB_ALL, 6, nullptr);
      },
      c_, watch_all(), Governor::Trip::deadline, GxB_TIMEOUT);
}

TEST_F(GovernorFault, ReduceToVectorCancelled) {
  governor_soak(
      "reduce cancel",
      [&] {
        return GrB_Matrix_reduce_Vector(w_, nullptr, GrB_NULL_ACCUM,
                                        GrB_PLUS_MONOID_FP64, a_, nullptr);
      },
      w_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, ApplyCancelled) {
  governor_soak(
      "apply cancel",
      [&] {
        return GrB_Vector_apply(w_, nullptr, GrB_NULL_ACCUM, GrB_ABS_FP64, u_,
                                nullptr);
      },
      w_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, TransposeCancelled) {
  governor_soak(
      "transpose cancel",
      [&] {
        return GrB_transpose(c_, nullptr, GrB_NULL_ACCUM, a_, nullptr);
      },
      c_, watch_all(), Governor::Trip::cancel, GxB_CANCELLED);
}

TEST_F(GovernorFault, KroneckerCancelled) {
  GrB_Matrix kc = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&kc, 36, 36), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement_FP64(kc, 9.0, 35, 35), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_wait(kc), GrB_SUCCESS);
  governor_soak(
      "kronecker cancel",
      [&] {
        return GrB_kronecker(kc, nullptr, GrB_NULL_ACCUM, GrB_TIMES_FP64, a_,
                             b_, nullptr);
      },
      kc, {{a_, b_, kc}, {}}, Governor::Trip::cancel, GxB_CANCELLED);
  GrB_Matrix_free(&kc);
}

TEST_F(GovernorFault, RealWallClockDeadlineTrips) {
  // A 1 ns timeout: the deadline is already in the past by the first strided
  // clock check. The clock is read every kClockStride-th poll per thread, so
  // a single tiny call may legitimately miss the check — repeat until the
  // stride lands (bounded; each mxm executes at least one poll).
  ASSERT_EQ(GxB_Context_set_timeout_ms(ctx_, 1e-6), GrB_SUCCESS);
  auto before = snapshot(c_);
  GrB_Info info = GrB_SUCCESS;
  for (int k = 0; k < 64 && info == GrB_SUCCESS; ++k) {
    info = GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                   a_, b_, nullptr);
    if (info == GrB_SUCCESS) {
      // Survived this call; the output legitimately changed. Re-snapshot so
      // the post-trip comparison is against the last committed state.
      before = snapshot(c_);
    }
  }
  ASSERT_EQ(GxB_Context_set_timeout_ms(ctx_, 0.0), GrB_SUCCESS);
  EXPECT_EQ(info, GxB_TIMEOUT) << "deadline never tripped in 64 calls";
  EXPECT_EQ(snapshot(c_), before)
      << "timed-out mxm modified its output";
  expect_all_valid(watch_all(), "wall-clock deadline", 0);
}

TEST_F(GovernorFault, BudgetLadderIsTransactionalAtEveryRung) {
  // Walk the byte budget up from 1 byte until mxm fits. Every failing rung
  // must report GrB_OUT_OF_MEMORY (BudgetError rides the OOM path) and be
  // fully transactional; the first passing rung must produce the same result
  // as an ungoverned run.
  ASSERT_EQ(GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a_, b_, nullptr),
            GrB_SUCCESS);  // warm caches + reference output
  const auto want = snapshot(c_);
  // Two passes. Tight budgets reroute auto-selection through the heap
  // fallback, whose workspace pools the ungoverned warm-up never touched;
  // pool growth on a failing rung is retained by design and is not a leak.
  // Pass 0 walks every rung once so each trip path's pools reach their
  // high-water mark; pass 1 repeats the identical walk and holds the strict
  // transactional line: a failing rung must leave the meter untouched.
  for (int pass = 0; pass < 2; ++pass) {
    bool fit = false;
    int failing_rungs = 0;
    for (std::uint64_t budget = 1; budget <= (std::uint64_t{1} << 30) && !fit;
         budget *= 4) {
      const std::size_t baseline = MemoryMeter::current_bytes();
      ASSERT_EQ(GxB_Context_set_budget(ctx_, budget), GrB_SUCCESS);
      const GrB_Info info =
          GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                  a_, b_, nullptr);
      ASSERT_EQ(GxB_Context_set_budget(ctx_, 0), GrB_SUCCESS);
      if (info == GrB_SUCCESS) {
        fit = true;
      } else {
        ++failing_rungs;
        EXPECT_EQ(info, GrB_OUT_OF_MEMORY)
            << "budget " << budget << " reported the wrong Info";
        if (pass == 1) {
          EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
              << "budget " << budget << " leaked metered bytes";
        }
      }
      EXPECT_EQ(snapshot(c_), want)
          << "budget " << budget << " changed the output";
      expect_all_valid(watch_all(), "budget ladder", budget);
    }
    EXPECT_TRUE(fit) << "mxm never fit under a 1 GiB budget";
    EXPECT_GT(failing_rungs, 0) << "a 1-byte budget let mxm through";
  }
}

TEST_F(GovernorFault, CancelFromAnotherThread) {
  // The documented contract: GxB_Context_cancel is safe from any thread
  // while another thread is inside a call under that context, and the flag
  // is sticky until GxB_Context_reset.
  std::atomic<bool> started{false};
  std::atomic<bool> saw_cancel{false};
  std::thread worker([&] {
    ASSERT_EQ(GxB_Context_engage(ctx_), GrB_SUCCESS);
    started.store(true);
    for (int k = 0; k < 1000000 && !saw_cancel.load(); ++k) {
      const GrB_Info info =
          GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                  a_, b_, nullptr);
      if (info == GxB_CANCELLED) {
        saw_cancel.store(true);
      } else {
        ASSERT_EQ(info, GrB_SUCCESS);
      }
    }
    ASSERT_EQ(GxB_Context_disengage(ctx_), GrB_SUCCESS);
  });
  while (!started.load()) std::this_thread::yield();
  ASSERT_EQ(GxB_Context_cancel(ctx_), GrB_SUCCESS);
  worker.join();
  EXPECT_TRUE(saw_cancel.load()) << "worker never observed the cancellation";

  // Sticky on this thread too (the fixture's engagement) ...
  bool flagged = false;
  ASSERT_EQ(GxB_Context_get_cancelled(&flagged, ctx_), GrB_SUCCESS);
  EXPECT_TRUE(flagged);
  EXPECT_EQ(GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a_, b_, nullptr),
            GxB_CANCELLED);
  // ... until reset.
  ASSERT_EQ(GxB_Context_reset(ctx_), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c_, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a_, b_, nullptr),
            GrB_SUCCESS);
  expect_all_valid(watch_all(), "cross-thread cancel", 0);
}

// --- forced-chunk governor soaks (C++ level) ------------------------------
// Chunk boundaries are unconditional poll points, so ForcedChunks(3) puts
// the trip inside the OpenMP region of every chunked kernel; the exception
// trap that ferries an injected bad_alloc out of the region must ferry
// CancelledError / TimeoutError the same way.

namespace {

template <class Out>
void cxx_governor_soak(const char* name, const std::function<void()>& op,
                       const Out& out, Governor::Trip kind) {
  Governor gov;
  {
    gb::platform::GovernorScope governed(&gov);
    ASSERT_NO_THROW(op()) << name << " failed under an idle governor";
  }
  const auto before = cxx_snapshot(out);
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    bool failed = false;
    {
      gb::platform::GovernorScope governed(&gov);
      ScopedTripAfter trip(n, kind);
      try {
        op();
      } catch (const gb::platform::CancelledError&) {
        EXPECT_EQ(kind, Governor::Trip::cancel) << name << " poll " << n;
        failed = true;
      } catch (const gb::platform::TimeoutError&) {
        EXPECT_EQ(kind, Governor::Trip::deadline) << name << " poll " << n;
        failed = true;
      }
    }
    if (!failed) return;  // survived every poll: done
    EXPECT_TRUE(gb::check(out, gb::CheckLevel::full).ok())
        << name << " corrupted its output tripping at poll " << n;
    EXPECT_EQ(cxx_snapshot(out), before)
        << name << " modified its output despite tripping at poll " << n;
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << name << " leaked metered bytes after tripping at poll " << n;
  }
  ADD_FAILURE() << name << " never completed under poll trips";
}

}  // namespace

TEST_F(KernelScratchFault, GovernorMxmGustavsonForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  cxx_governor_soak(
      "governed mxm/gustavson forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_, Governor::Trip::cancel);
}

TEST_F(KernelScratchFault, GovernorMxmDotMaskedForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::dot;
  cxx_governor_soak(
      "governed mxm<mask>/dot forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, b_, gb::no_accum, gb::plus_times<double>(), a_, b_, d);
      },
      c_, Governor::Trip::deadline);
}

TEST_F(KernelScratchFault, GovernorMxmHeapForcedChunks) {
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::heap;
  cxx_governor_soak(
      "governed mxm/heap forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::mxm(c_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                b_, d);
      },
      c_, Governor::Trip::cancel);
}

TEST_F(KernelScratchFault, GovernorEwiseSelectReduceForcedChunks) {
  cxx_governor_soak(
      "governed ewise_add forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::ewise_add(c_, gb::no_mask, gb::no_accum, gb::Plus{}, a_, b_);
      },
      c_, Governor::Trip::cancel);
  cxx_governor_soak(
      "governed select forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::select(c_, gb::no_mask, gb::no_accum, gb::SelTril{}, a_,
                   std::int64_t{0});
      },
      c_, Governor::Trip::deadline);
  cxx_governor_soak(
      "governed reduce forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::reduce(w_, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(),
                   a_);
      },
      w_, Governor::Trip::cancel);
}

TEST_F(KernelScratchFault, GovernorTransposeKroneckerForcedChunks) {
  cxx_governor_soak(
      "governed transpose forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        auto fresh = a_.dup();
        gb::transpose(c_, gb::no_mask, gb::no_accum, fresh);
      },
      c_, Governor::Trip::cancel);
  gb::Matrix<double> kc(36, 36);
  kc.set_element(35, 35, 1.5);
  kc.wait();
  cxx_governor_soak(
      "governed kronecker forced-chunks",
      [&] {
        gb::platform::ForcedChunks force(3);
        gb::kronecker(kc, gb::no_mask, gb::no_accum, gb::Times{}, a_, b_);
      },
      kc, Governor::Trip::cancel);
}

TEST_F(KernelScratchFault, GovernorMxvBothMethodsForcedChunks) {
  for (auto method : {gb::MxvMethod::push, gb::MxvMethod::pull}) {
    gb::Descriptor d;
    d.mxv = method;
    cxx_governor_soak(
        method == gb::MxvMethod::push ? "governed mxv/push forced-chunks"
                                      : "governed mxv/pull forced-chunks",
        [&] {
          gb::platform::ForcedChunks force(3);
          gb::mxv(w_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                  u_, d);
        },
        w_, Governor::Trip::cancel);
  }
}

// --- budget-aware method fallback -----------------------------------------

TEST(GovernorMxmFallback, AutoSelectFallsBackToHeapUnderTightBudget) {
  // A 65536-wide product whose auto-selection picks Gustavson (one A-row
  // with 8 entries defeats the heap heuristic's annz <= 4*arows test), but
  // whose Gustavson scratch (n * 9 bytes per worker ≈ 590 KiB+) cannot fit
  // a 256 KiB budget. The governor-aware selector must fail over to the
  // heap method up front and still produce the exact ungoverned result.
  const gb::Index n = 65536;
  gb::Matrix<double> a(n, n), b(n, n);
  for (gb::Index k = 0; k < 8; ++k) {
    a.set_element(0, k, static_cast<double>(k + 1));
    b.set_element(k, 2 * k, 1.5);
  }
  a.wait();
  b.wait();

  gb::Matrix<double> want(n, n);
  const gb::MxmMethod ungoverned = gb::mxm(
      want, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, b);
  EXPECT_EQ(ungoverned, gb::MxmMethod::gustavson)
      << "fixture no longer auto-selects gustavson; fallback test is moot";

  Governor gov;
  gov.set_budget(std::size_t{256} * 1024);
  gb::Matrix<double> out(n, n);
  gb::MxmMethod governed = gb::MxmMethod::gustavson;
  {
    gb::platform::GovernorScope governed_scope(&gov);
    governed = gb::mxm(out, gb::no_mask, gb::no_accum,
                       gb::plus_times<double>(), a, b);
  }
  EXPECT_EQ(governed, gb::MxmMethod::heap)
      << "tight budget did not divert auto-selection to the heap method";
  EXPECT_EQ(cxx_snapshot(out), cxx_snapshot(want))
      << "fallback method changed the result";

  // An explicit descriptor choice is honoured — and trips the budget
  // honestly instead of being silently rewritten. The ungoverned run above
  // left every worker's scratch pool warm, which would let Gustavson run
  // without a single metered allocation; drain the pools so the dense
  // accumulator has to be admitted (and charged) afresh.
#pragma omp parallel
  gb::platform::Workspace::clear_thread();
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  gb::Matrix<double> out2(n, n);
  {
    gb::platform::GovernorScope governed_scope(&gov);
    EXPECT_THROW(gb::mxm(out2, gb::no_mask, gb::no_accum,
                         gb::plus_times<double>(), a, b, d),
                 std::bad_alloc);
  }
}

// --- storage-form conversions and dense-native commits under injection ----

namespace {

// Conversions never change content, so the contract after any injected
// failure is "content identical and validator-clean". The byte meter cannot
// be compared at an arbitrary failure point — a multi-step round trip
// legitimately changes the resident form (and its footprint) mid-way — so
// the leak check renormalises the form with an uninjected round trip first:
// any bytes still above the settled level were leaked by a temporary.
template <class Obj>
void conversion_soak(const char* name, Obj& o) {
  using gb::FormatMode;
  auto round_trip = [&] {
    o.set_format(FormatMode::sparse);
    o.set_format(FormatMode::bitmap);
    o.set_format(FormatMode::full);  // degrades to bitmap: holes exist
    o.set_format(FormatMode::auto_fmt);
    o.set_format(FormatMode::bitmap);
  };
  ASSERT_NO_THROW(round_trip()) << name << " failed without injection";
  const auto before = cxx_snapshot(o);
  // Reading the snapshot may materialise metered caches on a dense store
  // (tuple extraction goes through a sparse view); renormalise once more so
  // `settled` matches the loop's metering point, which also sits right
  // after a clean round trip.
  round_trip();
  const std::size_t settled = MemoryMeter::current_bytes();
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    bool failed = false;
    {
      ScopedFailAfter guard(n);
      try {
        round_trip();
      } catch (const std::bad_alloc&) {
        failed = true;
      }
    }
    EXPECT_TRUE(gb::check(o, gb::CheckLevel::full).ok())
        << name << " corrupted the object failing at allocation " << n;
    EXPECT_EQ(cxx_snapshot(o), before)
        << name << " changed content converting at allocation " << n;
    round_trip();  // renormalise the resident form before metering
    EXPECT_EQ(MemoryMeter::current_bytes(), settled)
        << name << " leaked metered bytes after failing at allocation " << n;
    if (!failed) return;
  }
  ADD_FAILURE() << name << " never completed under injection";
}

}  // namespace

TEST_F(KernelScratchFault, MatrixFormatConversionRoundTrip) {
  conversion_soak("matrix form round-trip", a_);
}

TEST_F(KernelScratchFault, VectorFormatConversionRoundTrip) {
  conversion_soak("vector form round-trip", u_);
}

TEST_F(KernelScratchFault, MxvPullBitmapNativeOutput) {
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::pull;
  w_.set_format(gb::FormatMode::bitmap);
  cxx_soak(
      "mxv/pull bitmap-native output",
      [&] {
        gb::mxv(w_, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a_,
                u_, d);
      },
      w_);
  EXPECT_NE(w_.format(), gb::Format::sparse);
}

TEST_F(KernelScratchFault, AssignScalarAllFullNative) {
  w_.set_format(gb::FormatMode::full);
  cxx_soak(
      "vector assign_scalar ALL full-native",
      [&] {
        gb::assign_scalar(w_, gb::no_mask, gb::no_accum, 2.5,
                          gb::IndexSel::all(w_.size()));
      },
      w_);
  EXPECT_EQ(w_.format(), gb::Format::full);
}

TEST_F(KernelScratchFault, MatrixAssignScalarAllFullNative) {
  c_.set_format(gb::FormatMode::full);
  cxx_soak(
      "matrix assign_scalar ALL full-native",
      [&] {
        gb::assign_scalar(c_, gb::no_mask, gb::no_accum, -3.0,
                          gb::IndexSel::all(6), gb::IndexSel::all(6));
      },
      c_);
  EXPECT_EQ(c_.format(), gb::Format::full);
}

TEST_F(KernelScratchFault, TransposeDenseNative) {
  a_.set_format(gb::FormatMode::bitmap);
  c_.set_format(gb::FormatMode::bitmap);
  cxx_soak(
      "transpose dense-native",
      [&] { gb::transpose(c_, gb::no_mask, gb::no_accum, a_); }, c_);
}

TEST_F(KernelScratchFault, ApplyDenseNative) {
  a_.set_format(gb::FormatMode::bitmap);
  c_.set_format(gb::FormatMode::bitmap);
  cxx_soak(
      "apply dense-native",
      [&] {
        gb::apply(
            c_, gb::no_mask, gb::no_accum, [](double x) { return x + 1.0; },
            a_);
      },
      c_);
}
