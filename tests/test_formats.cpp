// The storage formats of §II-A: CSR, CSC, and their hypersparse variants;
// automatic hypersparsity; the cached dual orientation; and the bitmap/full
// dense forms — including the sweep that pins every operation's inputs and
// outputs to each form and demands identical results.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graphblas/graphblas.hpp"
#include "graphblas/validate.hpp"
#include "platform/parallel.hpp"

using gb::Format;
using gb::FormatMode;
using gb::HyperMode;
using gb::Index;
using gb::Layout;
using gb::Matrix;

namespace {

Matrix<double> sample(Layout layout, HyperMode hyper) {
  Matrix<double> a(6, 6, layout, hyper);
  std::vector<Index> r = {0, 0, 2, 4, 5};
  std::vector<Index> c = {1, 3, 2, 0, 5};
  std::vector<double> v = {1, 2, 3, 4, 5};
  a.build(r, c, v, gb::Plus{});
  return a;
}

}  // namespace

class FormatTest
    : public ::testing::TestWithParam<std::tuple<Layout, HyperMode>> {};

TEST_P(FormatTest, AllFormatsAgreeOnContent) {
  auto [layout, hyper] = GetParam();
  auto a = sample(layout, hyper);
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_EQ(a.extract_element(0, 3).value(), 2.0);
  EXPECT_EQ(a.extract_element(5, 5).value(), 5.0);
  EXPECT_FALSE(a.extract_element(3, 3).has_value());

  // extract_tuples is format-independent (always row-major sorted).
  std::vector<Index> r, c;
  std::vector<double> v;
  a.extract_tuples(r, c, v);
  EXPECT_EQ(r, (std::vector<Index>{0, 0, 2, 4, 5}));
  EXPECT_EQ(c, (std::vector<Index>{1, 3, 2, 0, 5}));
}

TEST_P(FormatTest, OperationsWorkOnEveryFormat) {
  // "all methods can operate on all four matrix formats in any combination"
  // (§II-A).
  auto [layout, hyper] = GetParam();
  auto a = sample(layout, hyper);
  gb::Vector<double> u(6);
  for (Index i = 0; i < 6; ++i) u.set_element(i, 1.0);
  gb::Vector<double> w(6);
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u);
  EXPECT_EQ(w.extract_element(0).value(), 3.0);  // 1+2
  EXPECT_EQ(w.extract_element(4).value(), 4.0);

  Matrix<double> c(6, 6);
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a);
  // (0,1)*(1,*) none; (0,3)*(3,*) none; (4,0)*(0,1)=4, (4,0)*(0,3)=8;
  // (5,5)*(5,5)=25; (2,2)*(2,2)=9.
  EXPECT_EQ(c.extract_element(4, 1).value(), 4.0);
  EXPECT_EQ(c.extract_element(4, 3).value(), 8.0);
  EXPECT_EQ(c.extract_element(5, 5).value(), 25.0);
  EXPECT_EQ(c.extract_element(2, 2).value(), 9.0);
  EXPECT_EQ(c.nvals(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatTest,
    ::testing::Combine(::testing::Values(Layout::by_row, Layout::by_col),
                       ::testing::Values(HyperMode::auto_mode,
                                         HyperMode::always, HyperMode::never)));

TEST(Hypersparse, AutoSwitchesOnSparsity) {
  // 1000x1000 with 3 populated rows: auto must go hypersparse. (Pinned to
  // the sparse form: a forced dense default would override the compressed
  // layout this test is about.)
  Matrix<double> a(1000, 1000);
  a.set_format(FormatMode::sparse);
  std::vector<Index> r = {10, 500, 999};
  std::vector<Index> c = {5, 6, 7};
  std::vector<double> v = {1, 2, 3};
  a.build(r, c, v, gb::Plus{});
  EXPECT_TRUE(a.is_hyper());

  // Dense-ish row occupancy: auto must stay standard.
  Matrix<double> b(16, 16);
  std::vector<Index> rr, cc;
  std::vector<double> vv;
  for (Index i = 0; i < 16; ++i) {
    rr.push_back(i);
    cc.push_back(i);
    vv.push_back(1.0);
  }
  b.build(rr, cc, vv, gb::Plus{});
  EXPECT_FALSE(b.is_hyper());
}

TEST(Hypersparse, MemoryIsOofE) {
  // §II-A: hypersparse takes O(e), so enormous dimensions are fine as long
  // as e << n. 2^40 x 2^40 with 100 entries must be buildable and tiny.
  const Index huge = Index{1} << 40;
  Matrix<double> a(huge, huge, Layout::by_row, HyperMode::always);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index k = 0; k < 100; ++k) {
    r.push_back(k * (huge / 101));
    c.push_back(k * (huge / 103));
    v.push_back(1.0);
  }
  a.build(r, c, v, gb::Plus{});
  EXPECT_EQ(a.nvals(), 100u);
  EXPECT_TRUE(a.is_hyper());
  EXPECT_LT(a.memory_bytes(), std::size_t{100} * 1024);  // far below O(n)
  EXPECT_EQ(a.extract_element(r[3], c[3]).value(), 1.0);

  // Incremental updates on the huge matrix also stay O(e).
  a.set_element((Index{1} << 39) + 12345, 42, 7.0);
  EXPECT_EQ(a.extract_element((Index{1} << 39) + 12345, 42).value(), 7.0);
  a.remove_element((Index{1} << 39) + 12345, 42);
  EXPECT_EQ(a.nvals(), 100u);
}

TEST(DualFormat, CachedTransposeOrientation) {
  auto a = sample(Layout::by_row, HyperMode::auto_mode);
  EXPECT_TRUE(a.orientation_ready(Layout::by_row));
  EXPECT_FALSE(a.orientation_ready(Layout::by_col));
  a.ensure_dual_format();
  EXPECT_TRUE(a.orientation_ready(Layout::by_col));
  auto bytes_dual = a.memory_bytes();
  a.drop_dual_format();
  EXPECT_FALSE(a.orientation_ready(Layout::by_col));
  EXPECT_LT(a.memory_bytes(), bytes_dual);
}

TEST(DualFormat, MutationInvalidatesCache) {
  auto a = sample(Layout::by_row, HyperMode::auto_mode);
  a.ensure_dual_format();
  a.set_element(3, 3, 9.0);
  // by_col must reflect the new entry.
  const auto& cols = a.by_col();
  auto k = cols.find_vec(3);
  ASSERT_TRUE(k.has_value());
  bool found = false;
  for (Index pos = cols.vec_begin(*k); pos < cols.vec_end(*k); ++pos) {
    if (cols.i[pos] == 3) found = true;
  }
  EXPECT_TRUE(found);
}

// ===========================================================================
// Bitmap / full storage forms
// ===========================================================================

namespace {

/// Deterministic ~60%-dense 12x12 fixture (dense enough that the auto
/// policy's dense paths fire, sparse enough that absent entries exist).
Matrix<double> dense_ish(Index n = 12) {
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if ((i * 7 + j * 3 + 1) % 5 < 3) {
        r.push_back(i);
        c.push_back(j);
        v.push_back(static_cast<double>(i * n + j) - 40.0);
      }
    }
  }
  Matrix<double> a(n, n);
  a.build(r, c, v, gb::Plus{});
  return a;
}

gb::Vector<double> dense_ish_vec(Index n = 12, int phase = 0) {
  gb::Vector<double> u(n);
  for (Index i = 0; i < n; ++i) {
    if ((i + phase) % 4 != 1) u.set_element(i, 1.0 + 0.25 * static_cast<double>(i));
  }
  return u;
}

struct MatTuples {
  std::vector<Index> r, c;
  std::vector<double> v;
  friend bool operator==(const MatTuples&, const MatTuples&) = default;
};

struct VecTuples {
  std::vector<Index> i;
  std::vector<double> v;
  friend bool operator==(const VecTuples&, const VecTuples&) = default;
};

MatTuples tuples(const Matrix<double>& a) {
  MatTuples t;
  a.extract_tuples(t.r, t.c, t.v);
  return t;
}

VecTuples tuples(const gb::Vector<double>& u) {
  VecTuples t;
  u.extract_tuples(t.i, t.v);
  return t;
}

void expect_valid(const Matrix<double>& a) {
  auto res = gb::check(a, gb::CheckLevel::full);
  EXPECT_TRUE(res.ok()) << res.message;
}

void expect_valid(const gb::Vector<double>& u) {
  auto res = gb::check(u, gb::CheckLevel::full);
  EXPECT_TRUE(res.ok()) << res.message;
}

const char* mode_name(FormatMode m) {
  switch (m) {
    case FormatMode::auto_fmt: return "auto";
    case FormatMode::sparse: return "sparse";
    case FormatMode::bitmap: return "bitmap";
    case FormatMode::full: return "full";
  }
  return "?";
}

}  // namespace

/// The sweep: inputs pinned to `in_mode`, outputs pinned to `out_mode`,
/// chunked kernels forced into `chunks` chunks (1/2/4 stands in for the
/// thread counts — chunk boundaries are what vary with threads). Every
/// operation must produce the same entries as the all-sparse single-chunk
/// reference, bit for bit, and every output must pass the full validator.
class StoreFormSweep
    : public ::testing::TestWithParam<
          std::tuple<FormatMode, FormatMode, int>> {};

TEST_P(StoreFormSweep, EveryOperationAgreesWithSparseReference) {
  const auto [in_mode, out_mode, chunks] = GetParam();
  SCOPED_TRACE(std::string("in=") + mode_name(in_mode) +
               " out=" + mode_name(out_mode) +
               " chunks=" + std::to_string(chunks));

  const Index n = 12;
  auto make_inputs = [&](FormatMode m) {
    auto a = dense_ish(n);
    auto b = dense_ish(n);
    b.set_element(0, 0, 3.5);  // so a != b
    auto u = dense_ish_vec(n, 0);
    auto v = dense_ish_vec(n, 2);
    a.set_format(m);
    b.set_format(m);
    u.set_format(m);
    v.set_format(m);
    return std::make_tuple(std::move(a), std::move(b), std::move(u),
                           std::move(v));
  };

  // Reference: everything sparse, default chunking.
  auto [ra, rb, ru, rv] = make_inputs(FormatMode::sparse);
  auto [a, b, u, v] = make_inputs(in_mode);

  gb::platform::ForcedChunks force(chunks);

  auto out_vec = [&] {
    gb::Vector<double> w(n);
    w.set_format(out_mode);
    return w;
  };
  auto out_mat = [&] {
    Matrix<double> c(n, n);
    c.set_format(out_mode);
    return c;
  };
  auto ref_vec = [&] {
    gb::Vector<double> w(n);
    w.set_format(FormatMode::sparse);
    return w;
  };
  auto ref_mat = [&] {
    Matrix<double> c(n, n);
    c.set_format(FormatMode::sparse);
    return c;
  };

  {  // mxv, both methods
    for (auto method : {gb::MxvMethod::push, gb::MxvMethod::pull}) {
      gb::Descriptor d;
      d.mxv = method;
      auto w = out_vec();
      auto wr = ref_vec();
      gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u, d);
      gb::mxv(wr, gb::no_mask, gb::no_accum, gb::plus_times<double>(), ra, ru,
              d);
      EXPECT_EQ(tuples(w), tuples(wr)) << "mxv method mismatch";
      expect_valid(w);
    }
  }
  {  // mxm
    auto c = out_mat();
    auto cr = ref_mat();
    gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, b);
    gb::mxm(cr, gb::no_mask, gb::no_accum, gb::plus_times<double>(), ra, rb);
    EXPECT_EQ(tuples(c), tuples(cr)) << "mxm";
    expect_valid(c);
  }
  {  // ewise vector add / mult
    auto w1 = out_vec();
    auto w1r = ref_vec();
    gb::ewise_add(w1, gb::no_mask, gb::no_accum, gb::Plus{}, u, v);
    gb::ewise_add(w1r, gb::no_mask, gb::no_accum, gb::Plus{}, ru, rv);
    EXPECT_EQ(tuples(w1), tuples(w1r)) << "ewise_add vec";
    expect_valid(w1);
    auto w2 = out_vec();
    auto w2r = ref_vec();
    gb::ewise_mult(w2, gb::no_mask, gb::no_accum, gb::Times{}, u, v);
    gb::ewise_mult(w2r, gb::no_mask, gb::no_accum, gb::Times{}, ru, rv);
    EXPECT_EQ(tuples(w2), tuples(w2r)) << "ewise_mult vec";
    expect_valid(w2);
  }
  {  // ewise matrix add / mult
    auto c1 = out_mat();
    auto c1r = ref_mat();
    gb::ewise_add(c1, gb::no_mask, gb::no_accum, gb::Plus{}, a, b);
    gb::ewise_add(c1r, gb::no_mask, gb::no_accum, gb::Plus{}, ra, rb);
    EXPECT_EQ(tuples(c1), tuples(c1r)) << "ewise_add mat";
    expect_valid(c1);
    auto c2 = out_mat();
    auto c2r = ref_mat();
    gb::ewise_mult(c2, gb::no_mask, gb::no_accum, gb::Times{}, a, b);
    gb::ewise_mult(c2r, gb::no_mask, gb::no_accum, gb::Times{}, ra, rb);
    EXPECT_EQ(tuples(c2), tuples(c2r)) << "ewise_mult mat";
    expect_valid(c2);
  }
  {  // apply (vector, matrix) and index-unary apply
    auto w = out_vec();
    auto wr = ref_vec();
    auto neg = [](double x) { return -x; };
    gb::apply(w, gb::no_mask, gb::no_accum, neg, u);
    gb::apply(wr, gb::no_mask, gb::no_accum, neg, ru);
    EXPECT_EQ(tuples(w), tuples(wr)) << "apply vec";
    expect_valid(w);
    auto c = out_mat();
    auto cr = ref_mat();
    gb::apply(c, gb::no_mask, gb::no_accum, neg, a);
    gb::apply(cr, gb::no_mask, gb::no_accum, neg, ra);
    EXPECT_EQ(tuples(c), tuples(cr)) << "apply mat";
    expect_valid(c);
    auto rowcol = [](double x, Index i, Index j, double t) {
      return x + 100.0 * static_cast<double>(i) + static_cast<double>(j) + t;
    };
    auto ci = out_mat();
    auto cir = ref_mat();
    gb::apply_indexop(ci, gb::no_mask, gb::no_accum, rowcol, a, 0.5);
    gb::apply_indexop(cir, gb::no_mask, gb::no_accum, rowcol, ra, 0.5);
    EXPECT_EQ(tuples(ci), tuples(cir)) << "apply_indexop mat";
    expect_valid(ci);
  }
  {  // assign_scalar over GrB_ALL (the full-form producer)
    auto w = out_vec();
    auto wr = ref_vec();
    gb::assign_scalar(w, gb::no_mask, gb::no_accum, 2.25,
                      gb::IndexSel::all(n));
    gb::assign_scalar(wr, gb::no_mask, gb::no_accum, 2.25,
                      gb::IndexSel::all(n));
    EXPECT_EQ(tuples(w), tuples(wr)) << "assign_scalar vec ALL";
    EXPECT_EQ(w.nvals(), n);
    expect_valid(w);
    auto c = out_mat();
    auto cr = ref_mat();
    gb::assign_scalar(c, gb::no_mask, gb::no_accum, -1.5, gb::IndexSel::all(n),
                      gb::IndexSel::all(n));
    gb::assign_scalar(cr, gb::no_mask, gb::no_accum, -1.5,
                      gb::IndexSel::all(n), gb::IndexSel::all(n));
    EXPECT_EQ(tuples(c), tuples(cr)) << "assign_scalar mat ALL";
    EXPECT_EQ(c.nvals(), n * n);
    expect_valid(c);
  }
  {  // reduce: rows -> vector, and to scalar
    auto w = out_vec();
    auto wr = ref_vec();
    gb::reduce(w, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(), a);
    gb::reduce(wr, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(), ra);
    EXPECT_EQ(tuples(w), tuples(wr)) << "reduce rows";
    expect_valid(w);
    EXPECT_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), u),
              gb::reduce_scalar(gb::plus_monoid<double>(), ru));
  }
  {  // transpose
    auto c = out_mat();
    auto cr = ref_mat();
    gb::transpose(c, gb::no_mask, gb::no_accum, a);
    gb::transpose(cr, gb::no_mask, gb::no_accum, ra);
    EXPECT_EQ(tuples(c), tuples(cr)) << "transpose";
    expect_valid(c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, StoreFormSweep,
    ::testing::Combine(::testing::Values(FormatMode::sparse,
                                         FormatMode::bitmap, FormatMode::full,
                                         FormatMode::auto_fmt),
                       ::testing::Values(FormatMode::sparse,
                                         FormatMode::bitmap, FormatMode::full,
                                         FormatMode::auto_fmt),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(mode_name(std::get<0>(info.param))) + "_" +
             mode_name(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

TEST(DenseForms, ConversionRoundTripPreservesEntriesAndValidates) {
  auto a = dense_ish();
  const auto ref = tuples(a);
  for (auto mode : {FormatMode::bitmap, FormatMode::full, FormatMode::sparse,
                    FormatMode::bitmap, FormatMode::sparse}) {
    a.set_format(mode);
    EXPECT_EQ(tuples(a), ref) << mode_name(mode);
    expect_valid(a);
  }
  // Partially-filled matrix: the full preference degrades to bitmap.
  a.set_format(FormatMode::full);
  EXPECT_EQ(a.format(), Format::bitmap);

  // A genuinely full matrix honours it.
  Matrix<double> f(4, 4);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      r.push_back(i);
      c.push_back(j);
      v.push_back(static_cast<double>(i * 4 + j));
    }
  }
  f.build(r, c, v, gb::Plus{});
  f.set_format(FormatMode::full);
  EXPECT_EQ(f.format(), Format::full);
  expect_valid(f);
  EXPECT_EQ(f.extract_element(2, 3).value(), 11.0);
}

TEST(DenseForms, VectorFullFactoryAndMutation) {
  auto u = gb::Vector<double>::full(6, 1.5);
  EXPECT_EQ(u.format(), Format::full);
  EXPECT_EQ(u.nvals(), 6);
  expect_valid(u);

  // In-place value write keeps the full form.
  u.set_element(2, 9.0);
  EXPECT_EQ(u.format(), Format::full);
  EXPECT_EQ(u.extract_element(2).value(), 9.0);

  // Removing an element demotes full -> bitmap (an absent slot exists now).
  u.remove_element(3);
  EXPECT_EQ(u.format(), Format::bitmap);
  EXPECT_EQ(u.nvals(), 5);
  EXPECT_FALSE(u.extract_element(3).has_value());
  expect_valid(u);

  // Refilling the hole under the auto policy collapses back to full.
  u.set_element(3, 4.0);
  EXPECT_EQ(u.nvals(), 6);
  expect_valid(u);

  // Shrinking keeps a full rep full; growing opens holes -> bitmap.
  auto w = gb::Vector<double>::full(6, 2.0);
  w.resize(3);
  EXPECT_EQ(w.format(), Format::full);
  EXPECT_EQ(w.nvals(), 3);
  expect_valid(w);
  w.resize(8);
  EXPECT_NE(w.format(), Format::full);
  EXPECT_EQ(w.nvals(), 3);
  expect_valid(w);
}

TEST(DenseForms, ForcedBitmapStaysBitmapEvenWhenFull) {
  // A forced-bitmap vector must NOT silently collapse to full when every
  // position becomes present — the pinned preference wins.
  gb::Vector<double> u(5);
  u.set_format(FormatMode::bitmap);
  gb::assign_scalar(u, gb::no_mask, gb::no_accum, 1.0, gb::IndexSel::all(5));
  EXPECT_EQ(u.nvals(), 5);
  EXPECT_EQ(u.format(), Format::bitmap);
  expect_valid(u);
}

TEST(DenseForms, DenseFormCapDegradesGracefully) {
  // Dimensions whose product exceeds the dense-form cap cannot go dense;
  // the preference degrades to sparse instead of erroring.
  const Index big = gb::kDenseFormCap;  // big * 2 > cap
  Matrix<double> a(big, 2);
  a.set_element(5, 1, 3.0);
  a.set_format(FormatMode::bitmap);
  EXPECT_EQ(a.format(), Format::sparse);
  EXPECT_EQ(a.extract_element(5, 1).value(), 3.0);
}
