// The four storage formats of §II-A: CSR, CSC, and their hypersparse
// variants; automatic hypersparsity; the cached dual orientation.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

using gb::HyperMode;
using gb::Index;
using gb::Layout;
using gb::Matrix;

namespace {

Matrix<double> sample(Layout layout, HyperMode hyper) {
  Matrix<double> a(6, 6, layout, hyper);
  std::vector<Index> r = {0, 0, 2, 4, 5};
  std::vector<Index> c = {1, 3, 2, 0, 5};
  std::vector<double> v = {1, 2, 3, 4, 5};
  a.build(r, c, v, gb::Plus{});
  return a;
}

}  // namespace

class FormatTest
    : public ::testing::TestWithParam<std::tuple<Layout, HyperMode>> {};

TEST_P(FormatTest, AllFormatsAgreeOnContent) {
  auto [layout, hyper] = GetParam();
  auto a = sample(layout, hyper);
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_EQ(a.extract_element(0, 3).value(), 2.0);
  EXPECT_EQ(a.extract_element(5, 5).value(), 5.0);
  EXPECT_FALSE(a.extract_element(3, 3).has_value());

  // extract_tuples is format-independent (always row-major sorted).
  std::vector<Index> r, c;
  std::vector<double> v;
  a.extract_tuples(r, c, v);
  EXPECT_EQ(r, (std::vector<Index>{0, 0, 2, 4, 5}));
  EXPECT_EQ(c, (std::vector<Index>{1, 3, 2, 0, 5}));
}

TEST_P(FormatTest, OperationsWorkOnEveryFormat) {
  // "all methods can operate on all four matrix formats in any combination"
  // (§II-A).
  auto [layout, hyper] = GetParam();
  auto a = sample(layout, hyper);
  gb::Vector<double> u(6);
  for (Index i = 0; i < 6; ++i) u.set_element(i, 1.0);
  gb::Vector<double> w(6);
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u);
  EXPECT_EQ(w.extract_element(0).value(), 3.0);  // 1+2
  EXPECT_EQ(w.extract_element(4).value(), 4.0);

  Matrix<double> c(6, 6);
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a);
  // (0,1)*(1,*) none; (0,3)*(3,*) none; (4,0)*(0,1)=4, (4,0)*(0,3)=8;
  // (5,5)*(5,5)=25; (2,2)*(2,2)=9.
  EXPECT_EQ(c.extract_element(4, 1).value(), 4.0);
  EXPECT_EQ(c.extract_element(4, 3).value(), 8.0);
  EXPECT_EQ(c.extract_element(5, 5).value(), 25.0);
  EXPECT_EQ(c.extract_element(2, 2).value(), 9.0);
  EXPECT_EQ(c.nvals(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatTest,
    ::testing::Combine(::testing::Values(Layout::by_row, Layout::by_col),
                       ::testing::Values(HyperMode::auto_mode,
                                         HyperMode::always, HyperMode::never)));

TEST(Hypersparse, AutoSwitchesOnSparsity) {
  // 1000x1000 with 3 populated rows: auto must go hypersparse.
  Matrix<double> a(1000, 1000);
  std::vector<Index> r = {10, 500, 999};
  std::vector<Index> c = {5, 6, 7};
  std::vector<double> v = {1, 2, 3};
  a.build(r, c, v, gb::Plus{});
  EXPECT_TRUE(a.is_hyper());

  // Dense-ish row occupancy: auto must stay standard.
  Matrix<double> b(16, 16);
  std::vector<Index> rr, cc;
  std::vector<double> vv;
  for (Index i = 0; i < 16; ++i) {
    rr.push_back(i);
    cc.push_back(i);
    vv.push_back(1.0);
  }
  b.build(rr, cc, vv, gb::Plus{});
  EXPECT_FALSE(b.is_hyper());
}

TEST(Hypersparse, MemoryIsOofE) {
  // §II-A: hypersparse takes O(e), so enormous dimensions are fine as long
  // as e << n. 2^40 x 2^40 with 100 entries must be buildable and tiny.
  const Index huge = Index{1} << 40;
  Matrix<double> a(huge, huge, Layout::by_row, HyperMode::always);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index k = 0; k < 100; ++k) {
    r.push_back(k * (huge / 101));
    c.push_back(k * (huge / 103));
    v.push_back(1.0);
  }
  a.build(r, c, v, gb::Plus{});
  EXPECT_EQ(a.nvals(), 100u);
  EXPECT_TRUE(a.is_hyper());
  EXPECT_LT(a.memory_bytes(), std::size_t{100} * 1024);  // far below O(n)
  EXPECT_EQ(a.extract_element(r[3], c[3]).value(), 1.0);

  // Incremental updates on the huge matrix also stay O(e).
  a.set_element((Index{1} << 39) + 12345, 42, 7.0);
  EXPECT_EQ(a.extract_element((Index{1} << 39) + 12345, 42).value(), 7.0);
  a.remove_element((Index{1} << 39) + 12345, 42);
  EXPECT_EQ(a.nvals(), 100u);
}

TEST(DualFormat, CachedTransposeOrientation) {
  auto a = sample(Layout::by_row, HyperMode::auto_mode);
  EXPECT_TRUE(a.orientation_ready(Layout::by_row));
  EXPECT_FALSE(a.orientation_ready(Layout::by_col));
  a.ensure_dual_format();
  EXPECT_TRUE(a.orientation_ready(Layout::by_col));
  auto bytes_dual = a.memory_bytes();
  a.drop_dual_format();
  EXPECT_FALSE(a.orientation_ready(Layout::by_col));
  EXPECT_LT(a.memory_bytes(), bytes_dual);
}

TEST(DualFormat, MutationInvalidatesCache) {
  auto a = sample(Layout::by_row, HyperMode::auto_mode);
  a.ensure_dual_format();
  a.set_element(3, 3, 9.0);
  // by_col must reflect the new entry.
  const auto& cols = a.by_col();
  auto k = cols.find_vec(3);
  ASSERT_TRUE(k.has_value());
  bool found = false;
  for (Index pos = cols.vec_begin(*k); pos < cols.vec_end(*k); ++pos) {
    if (cols.i[pos] == 3) found = true;
  }
  EXPECT_TRUE(found);
}
