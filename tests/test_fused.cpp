// The operator-fusion layer (graphblas/fused.hpp). Contract under test:
// every fused entry point is BIT-IDENTICAL to its unfused blocking-mode
// composition — the one desc_nofuse selects — at 1/2/4 threads and across
// sparse/bitmap/full storage forms, polls the governor, and commits
// transactionally under injected allocation failures and governor trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graphblas/graphblas.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "platform/alloc.hpp"
#include "platform/governor.hpp"
#include "platform/memory.hpp"
#include "platform/parallel.hpp"
#include "test_common.hpp"

using gb::FormatMode;
using gb::Index;
using gb::platform::Governor;
using gb::platform::MemoryMeter;
using gb::platform::ScopedFailAfter;
using gb::platform::ScopedTripAfter;

namespace {

class ThreadGuard {
 public:
  explicit ThreadGuard(int n) {
#ifdef _OPENMP
    before_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(before_);
#endif
  }

 private:
  int before_ = 1;
};

constexpr FormatMode kForms[] = {FormatMode::sparse, FormatMode::bitmap,
                                 FormatMode::full};

const char* form_name(FormatMode m) {
  switch (m) {
    case FormatMode::sparse: return "sparse";
    case FormatMode::bitmap: return "bitmap";
    case FormatMode::full: return "full";
    default: return "auto";
  }
}

/// Run `fused` and `unfused` under every thread count × input storage form
/// and assert the scalar results are exactly equal. `prep(form)` re-pins the
/// input forms before each run.
template <class Prep, class Fused, class Unfused>
void sweep_scalar(Prep prep, Fused fused, Unfused unfused) {
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    for (FormatMode form : kForms) {
      prep(form);
      const auto want = unfused();
      const auto got = fused();
      EXPECT_EQ(got, want) << threads << " threads, " << form_name(form);
    }
  }
}

}  // namespace

// --------------------------------------------------------------------------
// toggle plumbing
// --------------------------------------------------------------------------

TEST(FusedToggle, DescriptorVetoesFusion) {
  EXPECT_FALSE(gb::fusion_enabled(gb::desc_nofuse));
  gb::Descriptor d;
  d.no_fusion = true;
  EXPECT_FALSE(gb::fusion_enabled(d));
  // With the descriptor silent, the process-wide switch decides.
  EXPECT_EQ(gb::fusion_enabled(gb::desc_default), gb::fusion_env_enabled());
}

// --------------------------------------------------------------------------
// apply + reduce
// --------------------------------------------------------------------------

TEST(FusedApplyReduce, UnmaskedMatchesCompositionEverywhere) {
  auto u = testutil::random_vector(700, 0.4, 81);
  sweep_scalar(
      [&](FormatMode f) { u.set_format(f); },
      [&] {
        return gb::fused_apply_reduce(gb::plus_monoid<double>(), gb::Abs{}, u);
      },
      [&] {
        return gb::fused_apply_reduce(gb::plus_monoid<double>(), gb::Abs{}, u,
                                      gb::desc_nofuse);
      });
}

TEST(FusedApplyReduce, MaskedMatchesCompositionEverywhere) {
  auto u = testutil::random_vector(700, 0.5, 82);
  auto mask = testutil::random_vector(700, 0.3, 83);
  for (const auto& base : testutil::mask_descriptor_sweep()) {
    gb::Descriptor d = base;
    gb::Descriptor d_nofuse = base;
    d_nofuse.no_fusion = true;
    sweep_scalar(
        [&](FormatMode f) {
          u.set_format(f);
          mask.set_format(f);
        },
        [&] {
          return gb::fused_apply_reduce(gb::plus_monoid<double>(),
                                        gb::Identity{}, u, mask, d);
        },
        [&] {
          return gb::fused_apply_reduce(gb::plus_monoid<double>(),
                                        gb::Identity{}, u, mask, d_nofuse);
        });
  }
}

TEST(FusedApplyReduce, MinOverEmptySelectionIsIdentity) {
  // The delta-stepping convergence probe: min over an empty complement must
  // be +inf on both paths so !isfinite checks keep working.
  gb::Vector<double> u(64);
  gb::Vector<double> mask(64);
  for (Index i = 0; i < 64; ++i) {
    u.set_element(i, static_cast<double>(i));
    mask.set_element(i, 1.0);
  }
  const double fused = gb::fused_apply_reduce(
      gb::min_monoid<double>(), gb::Identity{}, u, mask, gb::desc_rsc);
  const double unfused = [&] {
    gb::Descriptor d = gb::desc_rsc;
    d.no_fusion = true;
    return gb::fused_apply_reduce(gb::min_monoid<double>(), gb::Identity{}, u,
                                  mask, d);
  }();
  EXPECT_EQ(fused, unfused);
  EXPECT_EQ(fused, std::numeric_limits<double>::infinity());
}

// --------------------------------------------------------------------------
// ewise + apply + reduce
// --------------------------------------------------------------------------

TEST(FusedEwiseReduce, VectorAddMatchesCompositionEverywhere) {
  auto u = testutil::random_vector(900, 0.45, 84);
  auto v = testutil::random_vector(900, 0.35, 85);
  sweep_scalar(
      [&](FormatMode f) {
        u.set_format(f);
        v.set_format(f);
      },
      [&] {
        return gb::fused_ewise_add_reduce(gb::plus_monoid<double>(), gb::Abs{},
                                          gb::Minus{}, u, v);
      },
      [&] {
        return gb::fused_ewise_add_reduce(gb::plus_monoid<double>(), gb::Abs{},
                                          gb::Minus{}, u, v, gb::desc_nofuse);
      });
}

TEST(FusedEwiseReduce, VectorMultMatchesCompositionEverywhere) {
  auto u = testutil::random_vector(900, 0.5, 86);
  auto v = testutil::random_vector(900, 0.4, 87);
  sweep_scalar(
      [&](FormatMode f) {
        u.set_format(f);
        v.set_format(f);
      },
      [&] {
        return gb::fused_ewise_mult_reduce(gb::plus_monoid<double>(),
                                           gb::Identity{}, gb::Times{}, u, v);
      },
      [&] {
        return gb::fused_ewise_mult_reduce(gb::plus_monoid<double>(),
                                           gb::Identity{}, gb::Times{}, u, v,
                                           gb::desc_nofuse);
      });
}

TEST(FusedEwiseReduce, AnyMismatchShortCircuits) {
  // The cc/peer-pressure flip detector: lor over Isne, full uint64 vectors.
  const Index n = 512;
  gb::Vector<std::uint64_t> x(n), y(n);
  for (Index i = 0; i < n; ++i) {
    x.set_element(i, i);
    y.set_element(i, i == 300 ? i + 1 : i);
  }
  EXPECT_TRUE(gb::fused_ewise_mult_reduce(gb::lor_monoid(), gb::Identity{},
                                          gb::Isne{}, x, y));
  EXPECT_FALSE(gb::fused_ewise_mult_reduce(gb::lor_monoid(), gb::Identity{},
                                           gb::Isne{}, x, x));
  // Flip count (plus over Isne) on both paths.
  const auto fused = gb::fused_ewise_mult_reduce(
      gb::plus_monoid<std::uint64_t>(), gb::Identity{}, gb::Isne{}, x, y);
  const auto unfused = gb::fused_ewise_mult_reduce(
      gb::plus_monoid<std::uint64_t>(), gb::Identity{}, gb::Isne{}, x, y,
      gb::desc_nofuse);
  EXPECT_EQ(fused, unfused);
  EXPECT_EQ(fused, 1u);
}

TEST(FusedEwiseReduce, MatrixAddMatchesCompositionEverywhere) {
  // MCL's L1 distance. nnz spans several fixed reduce chunks and the forced-
  // chunks hook exercises the combining tree at a different width too.
  auto a = testutil::random_matrix(140, 140, 0.55, 88);
  auto b = testutil::random_matrix(140, 140, 0.5, 89);
  sweep_scalar(
      [&](FormatMode f) {
        a.set_format(f);
        b.set_format(f);
      },
      [&] {
        return gb::fused_ewise_add_reduce(gb::plus_monoid<double>(), gb::Abs{},
                                          gb::Minus{}, a, b);
      },
      [&] {
        return gb::fused_ewise_add_reduce(gb::plus_monoid<double>(), gb::Abs{},
                                          gb::Minus{}, a, b, gb::desc_nofuse);
      });
  gb::platform::ForcedChunks force(3);
  const double fused = gb::fused_ewise_add_reduce(
      gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, a, b);
  const double unfused = gb::fused_ewise_add_reduce(
      gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, a, b,
      gb::desc_nofuse);
  EXPECT_EQ(fused, unfused);
}

// --------------------------------------------------------------------------
// ewise + apply
// --------------------------------------------------------------------------

TEST(FusedEwiseMultApply, MatchesCompositionEverywhere) {
  auto u = testutil::random_vector(800, 0.5, 90);
  auto v = testutil::random_vector(800, 0.45, 91);
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    for (FormatMode form : kForms) {
      u.set_format(form);
      v.set_format(form);
      gb::Vector<double> want(800), got(800);
      gb::fused_ewise_mult_apply(want, gb::Div{},
                                 gb::BindSecond<gb::Times, double>{{}, 0.85},
                                 u, v, gb::desc_nofuse);
      gb::fused_ewise_mult_apply(
          got, gb::Div{}, gb::BindSecond<gb::Times, double>{{}, 0.85}, u, v);
      EXPECT_TRUE(lagraph::isequal(want, got))
          << threads << " threads, " << form_name(form);
    }
  }
}

// --------------------------------------------------------------------------
// reduce + apply
// --------------------------------------------------------------------------

TEST(FusedReduceApply, MatchesCompositionEverywhere) {
  auto a = testutil::random_matrix(160, 160, 0.4, 92);
  for (const gb::Descriptor& base : {gb::desc_default, gb::desc_t0}) {
    for (int threads : {1, 2, 4}) {
      ThreadGuard guard(threads);
      for (FormatMode form : kForms) {
        a.set_format(form);
        gb::Descriptor d_nofuse = base;
        d_nofuse.no_fusion = true;
        gb::Vector<double> want(160), got(160);
        gb::fused_reduce_apply(want, gb::plus_monoid<double>(), gb::Minv{}, a,
                               d_nofuse);
        gb::fused_reduce_apply(got, gb::plus_monoid<double>(), gb::Minv{}, a,
                               base);
        EXPECT_TRUE(lagraph::isequal(want, got))
            << threads << " threads, " << form_name(form)
            << ", transpose=" << base.transpose_a;
      }
    }
  }
}

// --------------------------------------------------------------------------
// mxv / vxm epilogues
// --------------------------------------------------------------------------

TEST(FusedMxvEpilogue, FillAccumMatchesCompositionEverywhere) {
  auto a = lagraph::rmat(8, 8, 93);
  const Index n = a.nrows();
  auto u = testutil::random_vector(n, 0.6, 94);
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    for (FormatMode form : kForms) {
      a.set_format(form);
      u.set_format(form);
      for (auto method : {gb::MxvMethod::push, gb::MxvMethod::pull}) {
        gb::Descriptor d;
        d.mxv = method;
        gb::Descriptor d_nofuse = d;
        d_nofuse.no_fusion = true;
        gb::Vector<double> want(n), got(n);
        gb::mxv_fill_accum(want, gb::Plus{}, gb::plus_times<double>(), a, u,
                           0.25, d_nofuse);
        gb::mxv_fill_accum(got, gb::Plus{}, gb::plus_times<double>(), a, u,
                           0.25, d);
        EXPECT_TRUE(lagraph::isequal(want, got))
            << threads << " threads, " << form_name(form) << ", method "
            << static_cast<int>(method);
      }
    }
  }
}

TEST(FusedMxvEpilogue, FillAccumResidualMatchesCompositionEverywhere) {
  // The fused PageRank iteration tail: product, affine fill, and L1
  // residual against the previous iterate in one commit.
  auto a = lagraph::rmat(8, 8, 95);
  const Index n = a.nrows();
  auto u = testutil::random_vector(n, 0.7, 96);
  auto prev = gb::Vector<double>::full(n, 1.0 / static_cast<double>(n));
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    for (FormatMode form : kForms) {
      a.set_format(form);
      u.set_format(form);
      gb::Descriptor d_nofuse = gb::desc_nofuse;
      gb::Vector<double> want(n), got(n);
      const double res_want = gb::vxm_fill_accum_residual(
          want, gb::Plus{}, gb::plus_first<double>(), u, a, 0.15,
          gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, prev, d_nofuse);
      const double res_got = gb::vxm_fill_accum_residual(
          got, gb::Plus{}, gb::plus_first<double>(), u, a, 0.15,
          gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, prev);
      EXPECT_EQ(res_want, res_got)
          << threads << " threads, " << form_name(form);
      EXPECT_TRUE(lagraph::isequal(want, got))
          << threads << " threads, " << form_name(form);
    }
  }
}

TEST(FusedMxvEpilogue, AccumChangedMatchesCompositionEverywhere) {
  // Bellman-Ford's relaxation: min-accum vxm with fused change detection.
  auto a = lagraph::rmat(8, 8, 97);
  const Index n = a.nrows();
  auto dist = testutil::random_vector(n, 0.3, 98);
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    for (FormatMode form : kForms) {
      a.set_format(form);
      dist.set_format(form);
      gb::Vector<double> want = dist;
      gb::Vector<double> got = dist;
      const bool ch_want =
          gb::vxm_accum_changed(want, gb::Min{}, gb::min_plus<double>(), dist,
                                a, gb::desc_nofuse);
      const bool ch_got = gb::vxm_accum_changed(
          got, gb::Min{}, gb::min_plus<double>(), dist, a);
      EXPECT_EQ(ch_want, ch_got) << threads << " threads, " << form_name(form);
      EXPECT_TRUE(lagraph::isequal(want, got))
          << threads << " threads, " << form_name(form);
    }
  }
}

TEST(FusedMxvEpilogue, AccumChangedConvergesToFalse) {
  // At the Bellman-Ford fixpoint a further relaxation reports no change on
  // both paths.
  auto a = lagraph::rmat(7, 8, 99);  // unit weights: no negative cycles
  lagraph::Graph g(a.dup(), lagraph::Kind::directed);
  auto res = lagraph::sssp_bellman_ford(g, 0);
  gb::Vector<double> w1 = res.dist;
  gb::Vector<double> w2 = res.dist;
  EXPECT_FALSE(gb::vxm_accum_changed(w1, gb::Min{}, gb::min_plus<double>(),
                                     res.dist, a));
  EXPECT_FALSE(gb::vxm_accum_changed(w2, gb::Min{}, gb::min_plus<double>(),
                                     res.dist, a, gb::desc_nofuse));
  EXPECT_TRUE(lagraph::isequal(w1, w2));
}

// --------------------------------------------------------------------------
// algorithm-level spot checks (drivers call the fused entries)
// --------------------------------------------------------------------------

TEST(FusedAlgorithms, PagerankBitIdenticalAcrossThreadCounts) {
  auto adj = lagraph::rmat(9, 8, 100);
  lagraph::Graph g(adj.dup(), lagraph::Kind::directed);
  lagraph::PageRankResult serial;
  {
    ThreadGuard guard(1);
    serial = lagraph::pagerank(g);
  }
  for (int threads : {2, 4}) {
    ThreadGuard guard(threads);
    lagraph::Graph g2(adj.dup(), lagraph::Kind::directed);
    auto par = lagraph::pagerank(g2);
    EXPECT_EQ(serial.iterations, par.iterations) << threads << " threads";
    EXPECT_EQ(serial.residual, par.residual) << threads << " threads";
    EXPECT_TRUE(lagraph::isequal(serial.rank, par.rank))
        << threads << " threads";
  }
}

TEST(FusedAlgorithms, OutDegreeFp64IsCachedAndInvalidated) {
  auto adj = lagraph::rmat(6, 8, 101);
  lagraph::Graph g(adj.dup(), lagraph::Kind::directed);
  const auto* first = &g.out_degree_fp64();
  EXPECT_EQ(first, &g.out_degree_fp64());  // cached: same object back
  // Values match the int64 degrees exactly.
  const auto& d64 = g.out_degree();
  EXPECT_EQ(first->nvals(), d64.nvals());
  std::vector<Index> fi, ii;
  std::vector<double> fv;
  std::vector<std::int64_t> iv;
  first->extract_tuples(fi, fv);
  d64.extract_tuples(ii, iv);
  ASSERT_EQ(fv.size(), iv.size());
  for (std::size_t k = 0; k < fv.size(); ++k) {
    EXPECT_EQ(fi[k], ii[k]);
    EXPECT_EQ(fv[k], static_cast<double>(iv[k]));
  }
  g.invalidate_cache();
  EXPECT_TRUE(lagraph::isequal(*first, g.out_degree_fp64()));
}

// --------------------------------------------------------------------------
// governor coverage, fault injection, and trip soaks
// --------------------------------------------------------------------------

TEST(FusedGovernor, FusedKernelsPollTheGovernor) {
  auto a = lagraph::rmat(8, 8, 102);
  auto u = gb::Vector<double>::full(a.nrows(), 0.5);
  auto prev = gb::Vector<double>::full(a.nrows(), 0.25);
  Governor gov;
  gb::platform::GovernorScope scope(&gov);
  Governor::reset_poll_counter();
  gb::Vector<double> w(a.nrows());
  (void)gb::vxm_fill_accum_residual(w, gb::Plus{}, gb::plus_first<double>(),
                                    u, a, 0.1, gb::plus_monoid<double>(),
                                    gb::Abs{}, gb::Minus{}, prev);
  (void)gb::fused_apply_reduce(gb::plus_monoid<double>(), gb::Abs{}, u);
  EXPECT_GT(Governor::total_polls(), 0u)
      << "fused kernels ran without a single governor poll";
}

namespace {

/// C++-level fault-injection soak: run `op` under fail-at-Nth allocation
/// until it survives; after every injected failure the output vector must be
/// bit-identical to its pre-call state and the meter back at baseline.
void fused_alloc_soak(const char* name, const std::function<void()>& op,
                      const gb::Vector<double>& out) {
  ASSERT_NO_THROW(op()) << name << " failed without injection";
  std::vector<Index> bi;
  std::vector<double> bv;
  out.extract_tuples(bi, bv);
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    const std::size_t baseline = MemoryMeter::current_bytes();
    bool failed = false;
    {
      ScopedFailAfter guard(n);
      try {
        op();
      } catch (const std::bad_alloc&) {
        failed = true;
      }
    }
    if (!failed) return;  // survived injection: done
    std::vector<Index> ai;
    std::vector<double> av;
    out.extract_tuples(ai, av);
    EXPECT_EQ(ai, bi) << name << " pattern changed failing allocation " << n;
    EXPECT_EQ(av, bv) << name << " values changed failing allocation " << n;
    EXPECT_EQ(MemoryMeter::current_bytes(), baseline)
        << name << " leaked metered bytes failing at allocation " << n;
  }
  ADD_FAILURE() << name << " never completed under injection";
}

/// Governor trip soak: let N polls pass then trip every later one, for
/// N = 0, 1, 2, ... until the op survives. After every trip the output must
/// be bit-identical to its pre-call state.
void fused_trip_soak(const char* name, const std::function<void()>& op,
                     const gb::Vector<double>& out) {
  Governor gov;
  gb::platform::GovernorScope scope(&gov);
  ASSERT_NO_THROW(op()) << name << " failed under an idle governor";
  std::vector<Index> bi;
  std::vector<double> bv;
  out.extract_tuples(bi, bv);
  constexpr std::uint64_t kMaxN = 100000;
  for (std::uint64_t n = 0; n < kMaxN; ++n) {
    bool tripped = false;
    {
      ScopedTripAfter trip(n, Governor::Trip::cancel);
      try {
        op();
      } catch (const gb::platform::CancelledError&) {
        tripped = true;
      }
    }
    if (!tripped) return;  // survived: every poll point has been hit
    std::vector<Index> ai;
    std::vector<double> av;
    out.extract_tuples(ai, av);
    EXPECT_EQ(ai, bi) << name << " pattern changed tripping at poll " << n;
    EXPECT_EQ(av, bv) << name << " values changed tripping at poll " << n;
  }
  ADD_FAILURE() << name << " never completed under poll trips";
}

}  // namespace

TEST(FusedFaults, ResidualEpilogueIsTransactionalUnderOom) {
  gb::platform::Alloc::reset_counters();
  auto a = lagraph::rmat(6, 8, 103);
  const Index n = a.nrows();
  auto u = gb::Vector<double>::full(n, 0.5);
  auto prev = gb::Vector<double>::full(n, 0.25);
  gb::Vector<double> w(n);
  w.set_element(0, 9.0);  // pre-existing content the op must not corrupt
  fused_alloc_soak(
      "vxm_fill_accum_residual",
      [&] {
        gb::Vector<double> scratch = w;
        (void)gb::vxm_fill_accum_residual(
            scratch, gb::Plus{}, gb::plus_first<double>(), u, a, 0.1,
            gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, prev);
      },
      w);
}

TEST(FusedFaults, EwiseMultApplyIsTransactionalUnderOom) {
  gb::platform::Alloc::reset_counters();
  auto u = testutil::random_vector(300, 0.5, 104);
  auto v = testutil::random_vector(300, 0.5, 105);
  gb::Vector<double> w(300);
  w.set_element(5, 7.0);
  fused_alloc_soak(
      "fused_ewise_mult_apply",
      [&] {
        gb::Vector<double> scratch = w;
        gb::fused_ewise_mult_apply(
            scratch, gb::Div{}, gb::BindSecond<gb::Times, double>{{}, 0.85},
            u, v);
      },
      w);
}

TEST(FusedFaults, ResidualEpilogueSurvivesTripAtEveryPoll) {
  auto a = lagraph::rmat(6, 8, 106);
  const Index n = a.nrows();
  auto u = gb::Vector<double>::full(n, 0.5);
  auto prev = gb::Vector<double>::full(n, 0.25);
  gb::Vector<double> w(n);
  w.set_element(0, 9.0);
  fused_trip_soak(
      "vxm_fill_accum_residual",
      [&] {
        gb::Vector<double> scratch = w;
        (void)gb::vxm_fill_accum_residual(
            scratch, gb::Plus{}, gb::plus_first<double>(), u, a, 0.1,
            gb::plus_monoid<double>(), gb::Abs{}, gb::Minus{}, prev);
      },
      w);
}

TEST(FusedFaults, ApplyReduceSurvivesTripAtEveryPoll) {
  auto u = testutil::random_vector(2100, 0.8, 107);
  gb::Vector<double> untouched(4);
  untouched.set_element(1, 3.0);
  fused_trip_soak(
      "fused_apply_reduce",
      [&] {
        (void)gb::fused_apply_reduce(gb::plus_monoid<double>(), gb::Abs{}, u);
      },
      untouched);
}

TEST(FusedFaults, GovernorTripAtNthPollStopsPagerank) {
  // Driver-level: a pagerank run under a tripped governor must stop with
  // the trip reason and still hand back a consistent iterate.
  auto adj = lagraph::rmat(6, 8, 108);
  lagraph::Graph g(adj.dup(), lagraph::Kind::directed);
  {
    Governor gov;
    gb::platform::GovernorScope scope(&gov);
    ScopedTripAfter trip(25, Governor::Trip::cancel);
    auto res = lagraph::pagerank(g);
    EXPECT_EQ(res.stop, lagraph::StopReason::cancelled);
  }
  // Untripped afterwards: the same graph converges normally.
  lagraph::Graph g2(adj.dup(), lagraph::Kind::directed);
  auto res = lagraph::pagerank(g2);
  EXPECT_TRUE(res.converged);
}
