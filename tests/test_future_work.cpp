// The §V future-work algorithms: A* search, subgraph census, the
// Weisfeiler-Lehman kernel, and GCN inference.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

// --- A* ---------------------------------------------------------------------

TEST(AStar, ZeroHeuristicIsDijkstra) {
  Graph g(grid2d(8, 8, 3, 9.0), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto want = ref::dijkstra(sg, 0);
  for (Index target : {Index{63}, Index{7}, Index{36}}) {
    auto res = astar(g, 0, target);
    EXPECT_NEAR(res.distance, want[target], 1e-9) << "target " << target;
  }
}

TEST(AStar, PathIsValidAndOptimal) {
  Graph g(grid2d(6, 6, 5, 5.0), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto res = astar(g, 0, 35);
  ASSERT_FALSE(res.path.empty());
  EXPECT_EQ(res.path.front(), 0u);
  EXPECT_EQ(res.path.back(), 35u);
  // Edge-by-edge cost along the reported path must equal the distance.
  double total = 0.0;
  for (std::size_t k = 0; k + 1 < res.path.size(); ++k) {
    auto w = g.adj().extract_element(res.path[k], res.path[k + 1]);
    ASSERT_TRUE(w.has_value());
    total += *w;
  }
  EXPECT_NEAR(total, res.distance, 1e-9);
  EXPECT_NEAR(res.distance, ref::dijkstra(sg, 0)[35], 1e-9);
}

TEST(AStar, AdmissibleHeuristicPrunesExpansion) {
  // Weighted grid (weights >= 1) with the Manhattan-distance heuristic —
  // admissible because every step costs at least 1. On a *unit* grid every
  // vertex ties at f = d(target) and no pruning is possible; weights break
  // the tie and the heuristic must strictly reduce expansions.
  const Index rows = 12, cols = 12;
  Graph g(grid2d(rows, cols, /*seed=*/9, /*max_weight=*/6.0),
          Kind::undirected);
  const Index target = rows * cols - 1;

  gb::Vector<double> h(rows * cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      double manhattan = static_cast<double>((rows - 1 - r) + (cols - 1 - c));
      h.set_element(r * cols + c, manhattan);
    }
  }
  auto guided = astar(g, 0, target, h);
  auto blind = astar(g, 0, target);
  EXPECT_NEAR(guided.distance, blind.distance, 1e-9);
  EXPECT_LT(guided.expanded, blind.expanded);

  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  EXPECT_NEAR(guided.distance, ref::dijkstra(sg, 0)[target], 1e-9);
}

TEST(AStar, UnreachableTarget) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 0, 1.0);
  Graph g(std::move(a), Kind::undirected);
  auto res = astar(g, 0, 3);
  EXPECT_TRUE(std::isinf(res.distance));
  EXPECT_TRUE(res.path.empty());
}

TEST(AStar, RandomGraphsMatchDijkstra) {
  for (std::uint64_t seed : {1u, 2u}) {
    Graph g(randomize_weights(erdos_renyi(60, 240, seed), 0.5, 4.0, seed),
            Kind::undirected);
    auto sg = ref::SimpleGraph::from_matrix(g.adj());
    auto want = ref::dijkstra(sg, 5);
    for (Index t : {Index{0}, Index{30}, Index{59}}) {
      auto res = astar(g, 5, t);
      if (std::isinf(want[t])) {
        EXPECT_TRUE(std::isinf(res.distance));
      } else {
        EXPECT_NEAR(res.distance, want[t], 1e-9) << "t=" << t;
      }
    }
  }
}

// --- subgraph census ---------------------------------------------------------

namespace {

void expect_census_matches(Graph&& g) {
  auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
  auto c = subgraph_count(g);
  EXPECT_EQ(c.wedges, ref::count_wedges(sg));
  EXPECT_EQ(c.claws, ref::count_claws(sg));
  EXPECT_EQ(c.triangles, ref::count_triangles(sg));
  EXPECT_EQ(c.four_cycles, ref::count_4cycles(sg));
  EXPECT_EQ(c.tailed_triangles, ref::count_tailed_triangles(sg));
}

}  // namespace

TEST(SubgraphCensus, KnownShapes) {
  // C4: exactly one 4-cycle, 4 wedges, nothing else.
  auto c4 = subgraph_count(Graph(cycle_graph(4), Kind::undirected));
  EXPECT_EQ(c4.four_cycles, 1u);
  EXPECT_EQ(c4.wedges, 4u);
  EXPECT_EQ(c4.triangles, 0u);
  EXPECT_EQ(c4.claws, 0u);

  // K4: 4 triangles, 3 four-cycles, 12 wedges, 4 claws.
  auto k4 = subgraph_count(Graph(complete_graph(4), Kind::undirected));
  EXPECT_EQ(k4.triangles, 4u);
  EXPECT_EQ(k4.four_cycles, 3u);
  EXPECT_EQ(k4.wedges, 12u);
  EXPECT_EQ(k4.claws, 4u);

  // Star K1,4: C(4,2)=6 wedges, C(4,3)=4 claws.
  auto s = subgraph_count(Graph(star_graph(5), Kind::undirected));
  EXPECT_EQ(s.wedges, 6u);
  EXPECT_EQ(s.claws, 4u);
  EXPECT_EQ(s.four_cycles, 0u);
}

TEST(SubgraphCensus, RandomGraphsMatchBruteForce) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    expect_census_matches(Graph(erdos_renyi(30, 120, seed), Kind::undirected));
  }
  expect_census_matches(Graph(rmat(5, 6, 6), Kind::undirected));
  expect_census_matches(Graph(grid2d(5, 5), Kind::undirected));
}

// --- Weisfeiler-Lehman kernel ------------------------------------------------

namespace {

/// Vertex-permuted copy of a graph.
gb::Matrix<double> permuted(const gb::Matrix<double>& a, std::uint64_t seed) {
  const Index n = a.nrows();
  std::vector<Index> perm(n);
  for (Index i = 0; i < n; ++i) perm[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<Index> r, c;
  std::vector<double> v;
  a.extract_tuples(r, c, v);
  for (auto& x : r) x = perm[x];
  for (auto& x : c) x = perm[x];
  gb::Matrix<double> out(n, n);
  out.build(r, c, v, gb::First{});
  return out;
}

}  // namespace

TEST(WlKernel, IsomorphismInvariant) {
  auto a = rmat(5, 4, 9);
  Graph g1(a.dup(), Kind::undirected);
  Graph g2(permuted(a, 17), Kind::undirected);
  // k(G, pi(G)) == k(G, G): WL features are permutation-invariant.
  EXPECT_DOUBLE_EQ(wl_kernel(g1, g2, 3), wl_kernel(g1, g1, 3));
}

TEST(WlKernel, DistinguishesDifferentStructures) {
  Graph path(path_graph(6), Kind::undirected);
  Graph star(star_graph(6), Kind::undirected);
  double kpp = wl_kernel(path, path, 3);
  double kss = wl_kernel(star, star, 3);
  double kps = wl_kernel(path, star, 3);
  // Cauchy-Schwarz with strict inequality for structurally distinct graphs.
  EXPECT_LT(kps * kps, kpp * kss);
}

TEST(WlKernel, KnownBlindSpot) {
  // C6 vs 2xC3: both 2-regular — 1-WL provably cannot distinguish them.
  // Documenting the limitation is part of implementing the kernel.
  Graph c6(cycle_graph(6), Kind::undirected);
  gb::Matrix<double> two_tri(6, 6);
  auto add = [&two_tri](Index u, Index v) {
    two_tri.set_element(u, v, 1.0);
    two_tri.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(2, 0);
  add(3, 4);
  add(4, 5);
  add(5, 3);
  Graph tt(std::move(two_tri), Kind::undirected);
  EXPECT_DOUBLE_EQ(wl_kernel(c6, tt, 3), wl_kernel(c6, c6, 3));
}

TEST(WlKernel, LabelsRefineByStructure) {
  // On a path, endpoints / next-to-endpoints / middles split by round.
  Graph g(path_graph(7), Kind::undirected);
  auto l0 = to_dense_std(wl_labels(g, 0), std::uint64_t{0});
  auto l2 = to_dense_std(wl_labels(g, 2), std::uint64_t{0});
  EXPECT_EQ(l0[1], l0[3]);  // degree-2 vertices share the initial label
  EXPECT_NE(l2[1], l2[3]);  // 2 rounds separate them by distance to the end
  EXPECT_EQ(l2[1], l2[5]);  // symmetry preserved
}

// --- GCN inference -------------------------------------------------------------

TEST(Gcn, MatchesDenseComputation) {
  auto adj = erdos_renyi(10, 30, 7);
  Graph g(adj.dup(), Kind::undirected);

  auto x = random_matrix(10, 4, 30, 8);
  auto w1 = random_matrix(4, 5, 15, 9);
  auto w2 = random_matrix(5, 2, 8, 10);
  auto out = gcn_inference(g, x, {w1, w2});
  EXPECT_EQ(out.nrows(), 10u);
  EXPECT_EQ(out.ncols(), 2u);

  // Dense recomputation.
  const Index n = 10;
  std::vector<std::vector<double>> ad(n, std::vector<double>(n, 0.0));
  {
    std::vector<Index> r, c;
    std::vector<double> v;
    adj.extract_tuples(r, c, v);
    for (std::size_t k = 0; k < r.size(); ++k) ad[r[k]][c[k]] = v[k];
    for (Index i = 0; i < n; ++i) ad[i][i] += 1.0;
    std::vector<double> dsq(n);
    for (Index i = 0; i < n; ++i) {
      double s = 0;
      for (Index j = 0; j < n; ++j) s += ad[i][j];
      dsq[i] = 1.0 / std::sqrt(s);
    }
    for (Index i = 0; i < n; ++i)
      for (Index j = 0; j < n; ++j) ad[i][j] *= dsq[i] * dsq[j];
  }
  auto dense_of = [](const gb::Matrix<double>& m) {
    std::vector<std::vector<double>> d(m.nrows(),
                                       std::vector<double>(m.ncols(), 0.0));
    std::vector<Index> r, c;
    std::vector<double> v;
    m.extract_tuples(r, c, v);
    for (std::size_t k = 0; k < r.size(); ++k) d[r[k]][c[k]] = v[k];
    return d;
  };
  auto matmul = [](const auto& a, const auto& b) {
    std::vector<std::vector<double>> c(a.size(),
                                       std::vector<double>(b[0].size(), 0.0));
    for (std::size_t i = 0; i < a.size(); ++i)
      for (std::size_t k = 0; k < b.size(); ++k)
        for (std::size_t j = 0; j < b[0].size(); ++j)
          c[i][j] += a[i][k] * b[k][j];
    return c;
  };
  auto h = matmul(matmul(ad, dense_of(x)), dense_of(w1));
  for (auto& row : h)
    for (auto& e : row) e = std::max(e, 0.0);
  auto logits = matmul(matmul(ad, h), dense_of(w2));

  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < 2; ++j) {
      double got = out.extract_element(i, j).value_or(0.0);
      EXPECT_NEAR(got, logits[i][j], 1e-9) << i << "," << j;
    }
  }
}

TEST(Gcn, ValidatesShapes) {
  Graph g(cycle_graph(5), Kind::undirected);
  auto x = random_matrix(5, 3, 8, 1);
  auto bad_w = random_matrix(7, 2, 5, 2);
  EXPECT_THROW(gcn_inference(g, x, {bad_w}), gb::Error);
  EXPECT_THROW(gcn_inference(g, x, {}), gb::Error);
  auto wrong_x = random_matrix(4, 3, 8, 3);
  auto w = random_matrix(3, 2, 5, 4);
  EXPECT_THROW(gcn_inference(g, wrong_x, {w}), gb::Error);
}

TEST(Gcn, SingleLayerIsLinear) {
  // One layer: logits may be negative (no ReLU on the last layer).
  Graph g(path_graph(4), Kind::undirected);
  gb::Matrix<double> x(4, 1);
  for (Index i = 0; i < 4; ++i) x.set_element(i, 0, 1.0);
  gb::Matrix<double> w(1, 1);
  w.set_element(0, 0, -2.0);
  auto out = gcn_inference(g, x, {w});
  EXPECT_EQ(out.nvals(), 4u);
  EXPECT_LT(out.extract_element(0, 0).value(), 0.0);
}
