// Graph generators: structural invariants and the scale-free degree skew
// that the direction-optimisation experiments rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "lagraph/util/stats.hpp"

using gb::Index;
using namespace lagraph;

TEST(Generator, PathCycleStarComplete) {
  auto p = path_graph(5);
  EXPECT_EQ(p.nvals(), 8u);  // 4 edges x2
  auto c = cycle_graph(5);
  EXPECT_EQ(c.nvals(), 10u);
  auto s = star_graph(5);
  EXPECT_EQ(s.nvals(), 8u);
  auto k = complete_graph(4);
  EXPECT_EQ(k.nvals(), 12u);

  Graph gp(path_graph(5), Kind::undirected);
  EXPECT_TRUE(gp.is_symmetric());
  EXPECT_EQ(gp.nself_edges(), 0u);
}

TEST(Generator, Grid2dStructure) {
  auto g = grid2d(3, 4);
  EXPECT_EQ(g.nrows(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 edges, stored twice.
  EXPECT_EQ(g.nvals(), 34u);
  Graph gg(std::move(g), Kind::undirected);
  EXPECT_TRUE(gg.is_symmetric());
  auto deg = to_dense_std(gg.out_degree(), std::int64_t{0});
  EXPECT_EQ(*std::max_element(deg.begin(), deg.end()), 4);
  EXPECT_EQ(*std::min_element(deg.begin(), deg.end()), 2);
}

TEST(Generator, Grid2dWeighted) {
  auto g = grid2d(4, 4, 7, 10.0);
  Graph gg(std::move(g), Kind::undirected);
  EXPECT_TRUE(gg.is_symmetric());  // weights mirrored exactly
  double mx = gb::reduce_scalar(gb::max_monoid<double>(), gg.adj());
  double mn = gb::reduce_scalar(gb::min_monoid<double>(), gg.adj());
  EXPECT_GE(mn, 1.0);
  EXPECT_LE(mx, 10.0);
  EXPECT_GT(mx, mn);
}

TEST(Generator, ErdosRenyiBasics) {
  auto g = erdos_renyi(200, 600, 42);
  EXPECT_EQ(g.nrows(), 200u);
  EXPECT_GT(g.nvals(), 800u);  // ~1200 minus collisions/self-loops
  Graph gg(std::move(g), Kind::undirected);
  EXPECT_TRUE(gg.is_symmetric());
  EXPECT_EQ(gg.nself_edges(), 0u);
}

TEST(Generator, RmatIsSkewed) {
  auto g = rmat(10, 8, 1);  // 1024 vertices, ~8192 edges
  Graph gg(std::move(g), Kind::undirected);
  auto s = graph_stats(gg);
  EXPECT_EQ(s.n, 1024u);
  EXPECT_TRUE(s.symmetric);
  // Power-law-ish: the max degree dwarfs the mean (uniform graphs have
  // max/mean close to 1).
  EXPECT_GT(static_cast<double>(s.max_degree), 6.0 * s.mean_degree);
}

TEST(Generator, RmatDeterministicPerSeed) {
  auto a = rmat(8, 4, 7);
  auto b = rmat(8, 4, 7);
  auto c = rmat(8, 4, 8);
  EXPECT_TRUE(isequal(a, b));
  EXPECT_FALSE(isequal(a, c));
}

TEST(Generator, RandomizeWeightsKeepsPatternSymmetric) {
  auto a = erdos_renyi(50, 120, 3);
  auto w = randomize_weights(a, 1.0, 9.0, 11);
  EXPECT_EQ(a.nvals(), w.nvals());
  Graph gw(std::move(w), Kind::undirected);
  EXPECT_TRUE(gw.is_symmetric());  // pairwise weights derived symmetrically
}

TEST(Generator, RandomMatrixAndVector) {
  auto m = random_matrix(20, 30, 100, 5);
  EXPECT_EQ(m.nrows(), 20u);
  EXPECT_EQ(m.ncols(), 30u);
  EXPECT_GT(m.nvals(), 80u);
  auto v = random_vector(100, 30, 6);
  EXPECT_GT(v.nvals(), 20u);
  EXPECT_LE(v.nvals(), 30u);
}
