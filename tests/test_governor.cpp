// Unit tests for the execution governor: the Governor primitive itself
// (arm/disarm nesting, budgets, trips, poll accounting), the GxB_Context C
// bindings (lifecycle rules, round-trips, engage/disengage semantics), and
// the lagraph::Scope partial-progress contract (algorithms stop cleanly
// between iterations and report why).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "capi/graphblas_c.h"
#include "graphblas/graphblas.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/util/generator.hpp"
#include "platform/governor.hpp"
#include "platform/memory.hpp"

using gb::platform::BudgetError;
using gb::platform::CancelledError;
using gb::platform::Governor;
using gb::platform::GovernorBind;
using gb::platform::GovernorScope;
using gb::platform::ScopedTripAfter;
using gb::platform::TimeoutError;

namespace {

// Set the env cap before any metered allocation caches the parse. A huge
// value so the cap never interferes with the other tests in this binary.
const bool env_primed = [] {
  ::setenv("LAGRAPH_MEM_BUDGET", "109951162777600", 1);  // 100 TiB
  return true;
}();

}  // namespace

// --- Governor primitive ----------------------------------------------------

TEST(Governor, UninstalledByDefault) {
  EXPECT_EQ(Governor::current(), nullptr);
  // The kernel-side poll point must be a no-op when ungoverned — even with
  // a trip countdown armed, since trips only fire inside Governor::poll().
  ScopedTripAfter trip(0, Governor::Trip::cancel);
  EXPECT_NO_THROW(gb::platform::governor_poll());
}

TEST(Governor, ScopeInstallsAndRestores) {
  Governor gov;
  EXPECT_EQ(Governor::current(), nullptr);
  {
    GovernorScope s(&gov);
    EXPECT_EQ(Governor::current(), &gov);
    {
      Governor inner;
      GovernorScope s2(&inner);
      EXPECT_EQ(Governor::current(), &inner);
    }
    EXPECT_EQ(Governor::current(), &gov);
  }
  EXPECT_EQ(Governor::current(), nullptr);
}

TEST(Governor, NullScopeIsANoOp) {
  GovernorScope s(nullptr);
  EXPECT_EQ(Governor::current(), nullptr);
}

TEST(Governor, CancelIsStickyUntilCleared) {
  Governor gov;
  EXPECT_FALSE(gov.cancelled());
  gov.cancel();
  EXPECT_TRUE(gov.cancelled());
  GovernorScope s(&gov);
  EXPECT_THROW(gov.poll(), CancelledError);
  EXPECT_THROW(gov.poll(), CancelledError);  // sticky
  EXPECT_EQ(gov.tripped(), 1);
  gov.clear_cancel();
  EXPECT_FALSE(gov.cancelled());
  EXPECT_NO_THROW(gov.poll());
  EXPECT_EQ(gov.tripped(), 0);
}

TEST(Governor, BudgetRemainingUnarmedIsUnlimited) {
  Governor gov;
  gov.set_budget(1024);
  EXPECT_EQ(gov.budget(), 1024u);
  // Not armed: no limit captured yet.
  EXPECT_EQ(gov.budget_remaining(), static_cast<std::size_t>(-1));
  {
    GovernorScope s(&gov);
    const std::size_t remaining = gov.budget_remaining();
    EXPECT_LE(remaining, 1024u);
    EXPECT_NO_THROW(gov.charge(remaining));
    EXPECT_THROW(gov.charge(remaining + 1), BudgetError);
  }
  // Disarmed again.
  EXPECT_EQ(gov.budget_remaining(), static_cast<std::size_t>(-1));
  EXPECT_NO_THROW(gov.charge(std::size_t{1} << 40));
}

TEST(Governor, NestedArmsKeepOneBaseline) {
  Governor gov;
  gov.set_budget(4096);
  GovernorScope outer(&gov);
  const std::size_t remaining = gov.budget_remaining();
  {
    // A nested arm (e.g. a C entry point under a lagraph::Scope) must not
    // re-capture the baseline or the deadline.
    GovernorScope inner(&gov);
    EXPECT_EQ(gov.budget_remaining(), remaining);
  }
  // Inner disarm must not drop the outer limit either.
  EXPECT_EQ(gov.budget_remaining(), remaining);
}

TEST(Governor, DeadlineTripsAfterItPasses) {
  Governor gov;
  gov.set_timeout_ms(1e-6);  // 1 ns: already past by the first check
  GovernorScope s(&gov);
  EXPECT_EQ(gov.tripped(), 2);
  // poll()'s clock check is strided per thread; within kClockStride polls
  // one must land on the check and throw.
  bool threw = false;
  for (int k = 0; k < 64 && !threw; ++k) {
    try {
      gov.poll();
    } catch (const TimeoutError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(Governor, NoTimeoutMeansNoDeadline) {
  Governor gov;
  gov.set_timeout_ms(0.0);
  GovernorScope s(&gov);
  EXPECT_EQ(gov.tripped(), 0);
  for (int k = 0; k < 64; ++k) EXPECT_NO_THROW(gov.poll());
}

TEST(Governor, TripCountdownAddressesPollsByOrdinal) {
  Governor gov;
  GovernorScope s(&gov);
  {
    ScopedTripAfter trip(3, Governor::Trip::cancel);
    EXPECT_NO_THROW(gov.poll());  // 1
    EXPECT_NO_THROW(gov.poll());  // 2
    EXPECT_NO_THROW(gov.poll());  // 3
    EXPECT_THROW(gov.poll(), CancelledError);  // 4: trips
    EXPECT_THROW(gov.poll(), CancelledError);  // sticky
  }
  // Guard destroyed: trips disarmed.
  EXPECT_NO_THROW(gov.poll());
}

TEST(Governor, PollCounterCountsEveryPoll) {
  Governor gov;
  GovernorScope s(&gov);
  Governor::reset_poll_counter();
  for (int k = 0; k < 10; ++k) gov.poll();
  EXPECT_GE(Governor::total_polls(), 10u);
}

TEST(Governor, BindRebindsOnWorkerWithoutTouchingArmState) {
  Governor gov;
  gov.set_budget(8192);
  GovernorScope s(&gov);
  const std::size_t remaining = gov.budget_remaining();
  std::thread worker([&] {
    EXPECT_EQ(Governor::current(), nullptr);  // thread-local: not inherited
    {
      GovernorBind bind(&gov);
      EXPECT_EQ(Governor::current(), &gov);
      EXPECT_EQ(gov.budget_remaining(), remaining);
    }
    EXPECT_EQ(Governor::current(), nullptr);
  });
  worker.join();
  EXPECT_EQ(gov.budget_remaining(), remaining);
}

TEST(Governor, EnvBudgetParsesBytes) {
  // Primed by the static initialiser above, before anything could cache it.
  EXPECT_EQ(Governor::env_budget(), 109951162777600ull);
}

TEST(Governor, KernelsPollUnderAnInstalledGovernor) {
  // An installed governor must actually be consulted by kernel code: run a
  // real operation and watch the global poll counter move.
  gb::Matrix<double> a(64, 64), c(64, 64);
  for (gb::Index k = 0; k < 63; ++k) a.set_element(k, k + 1, 1.0);
  a.wait();
  Governor gov;
  GovernorScope s(&gov);
  Governor::reset_poll_counter();
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a);
  EXPECT_GT(Governor::total_polls(), 0u)
      << "mxm ran to completion without a single governor poll";
}

// --- GxB_Context C bindings ------------------------------------------------

TEST(GxbContext, NullArgumentsRejected) {
  EXPECT_EQ(GxB_Context_new(nullptr), GrB_NULL_POINTER);
  GxB_Context null_ctx = nullptr;
  EXPECT_EQ(GxB_Context_set_budget(null_ctx, 1), GrB_NULL_POINTER);
  std::uint64_t bytes = 0;
  EXPECT_EQ(GxB_Context_get_budget(&bytes, null_ctx), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Context_cancel(null_ctx), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Context_engage(null_ctx), GrB_NULL_POINTER);
}

TEST(GxbContext, SettingsRoundTrip) {
  GxB_Context ctx = nullptr;
  ASSERT_EQ(GxB_Context_new(&ctx), GrB_SUCCESS);

  std::uint64_t bytes = 1;
  ASSERT_EQ(GxB_Context_get_budget(&bytes, ctx), GrB_SUCCESS);
  EXPECT_EQ(bytes, 0u);  // default: unlimited
  ASSERT_EQ(GxB_Context_set_budget(ctx, 1 << 20), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_get_budget(&bytes, ctx), GrB_SUCCESS);
  EXPECT_EQ(bytes, std::uint64_t{1} << 20);

  double ms = 1.0;
  ASSERT_EQ(GxB_Context_get_timeout_ms(&ms, ctx), GrB_SUCCESS);
  EXPECT_EQ(ms, 0.0);  // default: none
  ASSERT_EQ(GxB_Context_set_timeout_ms(ctx, 250.0), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_get_timeout_ms(&ms, ctx), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(ms, 250.0);

  bool cancelled = true;
  ASSERT_EQ(GxB_Context_get_cancelled(&cancelled, ctx), GrB_SUCCESS);
  EXPECT_FALSE(cancelled);
  ASSERT_EQ(GxB_Context_cancel(ctx), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_get_cancelled(&cancelled, ctx), GrB_SUCCESS);
  EXPECT_TRUE(cancelled);
  ASSERT_EQ(GxB_Context_reset(ctx), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_get_cancelled(&cancelled, ctx), GrB_SUCCESS);
  EXPECT_FALSE(cancelled);

  EXPECT_EQ(GxB_Context_free(&ctx), GrB_SUCCESS);
  EXPECT_EQ(ctx, nullptr);
}

TEST(GxbContext, EngageDisengageRules) {
  GxB_Context ctx = nullptr;
  ASSERT_EQ(GxB_Context_new(&ctx), GrB_SUCCESS);

  // Disengaging a context that is not engaged on this thread is an error;
  // disengage(NULL) is the blanket form and always succeeds.
  EXPECT_EQ(GxB_Context_disengage(ctx), GrB_INVALID_VALUE);
  EXPECT_EQ(GxB_Context_disengage(nullptr), GrB_SUCCESS);

  ASSERT_EQ(GxB_Context_engage(ctx), GrB_SUCCESS);
  // An engaged context cannot be freed from the engaging thread.
  EXPECT_EQ(GxB_Context_free(&ctx), GrB_INVALID_VALUE);
  EXPECT_NE(ctx, nullptr);

  ASSERT_EQ(GxB_Context_disengage(ctx), GrB_SUCCESS);
  EXPECT_EQ(GxB_Context_free(&ctx), GrB_SUCCESS);
}

TEST(GxbContext, EngagementIsPerThread) {
  GxB_Context ctx = nullptr;
  ASSERT_EQ(GxB_Context_new(&ctx), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_engage(ctx), GrB_SUCCESS);
  std::thread other([&] {
    // Not engaged over here: disengaging it is the caller's error.
    EXPECT_EQ(GxB_Context_disengage(ctx), GrB_INVALID_VALUE);
    // But this thread may engage (and must disengage) it independently.
    EXPECT_EQ(GxB_Context_engage(ctx), GrB_SUCCESS);
    EXPECT_EQ(GxB_Context_disengage(ctx), GrB_SUCCESS);
  });
  other.join();
  ASSERT_EQ(GxB_Context_disengage(ctx), GrB_SUCCESS);
  EXPECT_EQ(GxB_Context_free(&ctx), GrB_SUCCESS);
}

TEST(GxbContext, CancelledCallReportsAndRecovers) {
  GxB_Context ctx = nullptr;
  ASSERT_EQ(GxB_Context_new(&ctx), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_engage(ctx), GrB_SUCCESS);

  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, 8, 8), GrB_SUCCESS);
  for (GrB_Index k = 0; k < 7; ++k) {
    ASSERT_EQ(GrB_Matrix_setElement_FP64(a, 1.0, k, k + 1), GrB_SUCCESS);
  }
  ASSERT_EQ(GrB_Matrix_wait(a), GrB_SUCCESS);

  ASSERT_EQ(GxB_Context_cancel(ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, nullptr),
            GxB_CANCELLED);
  // The error string is retrievable from the output object, like any other
  // failure at the C boundary.
  const char* msg = nullptr;
  EXPECT_EQ(GrB_Matrix_error(&msg, c), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(std::string(msg).find("cancel"), std::string::npos);

  ASSERT_EQ(GxB_Context_reset(ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, nullptr, GrB_NULL_ACCUM, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, nullptr),
            GrB_SUCCESS);

  GrB_Matrix_free(&a);
  GrB_Matrix_free(&c);
  ASSERT_EQ(GxB_Context_disengage(ctx), GrB_SUCCESS);
  ASSERT_EQ(GxB_Context_free(&ctx), GrB_SUCCESS);
}

// --- lagraph::Scope partial progress ---------------------------------------

namespace {

lagraph::Graph ring(gb::Index n) {
  return lagraph::Graph(lagraph::cycle_graph(n), lagraph::Kind::undirected);
}

}  // namespace

TEST(LagraphScope, UngovernedAlgorithmsRunToCompletion) {
  auto res = lagraph::pagerank(ring(16));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.stop, lagraph::StopReason::converged);
  EXPECT_LT(res.residual, 1e-6);
}

TEST(LagraphScope, PreCancelledGovernorStopsCleanly) {
  // The cancel is already set when the driver starts: no iteration runs, no
  // exception escapes — just telemetry saying why nothing happened.
  // Build the graph before engaging the scope: under a forced dense format
  // even construction polls (the storage conversion is governed work), and
  // this test is about the *driver* seeing the pre-set cancel.
  auto g = ring(16);
  Governor gov;
  gov.cancel();
  GovernorScope s(&gov);
  auto res = lagraph::pagerank(g);
  EXPECT_EQ(res.stop, lagraph::StopReason::cancelled);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(LagraphScope, MidRunTripReturnsPartialProgress) {
  // A path graph converges slowly (~200 iterations at tol 1e-14), so the
  // trip is guaranteed to fire mid-run; pagerank must stop cleanly with
  // whatever the last committed iterate was, not throw.
  Governor gov;
  GovernorScope s(&gov);
  ScopedTripAfter trip(300, Governor::Trip::cancel);
  auto res = lagraph::pagerank(
      lagraph::Graph(lagraph::path_graph(64), lagraph::Kind::undirected),
      0.85, 1e-14, 200);
  EXPECT_EQ(res.stop, lagraph::StopReason::cancelled);
  EXPECT_FALSE(res.converged);
  if (res.iterations > 0) {
    // At least one iteration committed: the iterate is a full distribution.
    EXPECT_EQ(res.rank.nvals(), 64u);
  }
}

TEST(LagraphScope, DeadlineSurfacesAsTimeoutStop) {
  // A 64-cycle BFS walks 32 levels; tripping at poll 40 stops it well short.
  Governor gov;
  GovernorScope s(&gov);
  ScopedTripAfter trip(40, Governor::Trip::deadline);
  auto res = lagraph::bfs(ring(64), 0);
  EXPECT_EQ(res.stop, lagraph::StopReason::timeout);
  EXPECT_LT(res.depth, 32);
}

TEST(LagraphScope, SsspReportsInterruption) {
  // Bellman-Ford on a 64-cycle needs 32+ relaxation rounds; poll 40 is
  // mid-run.
  Governor gov;
  GovernorScope s(&gov);
  ScopedTripAfter trip(40, Governor::Trip::cancel);
  auto res = lagraph::sssp_bellman_ford(ring(64), 0);
  EXPECT_EQ(res.stop, lagraph::StopReason::cancelled);
}

TEST(LagraphScope, StopReasonStringsAreStable) {
  using lagraph::StopReason;
  EXPECT_STREQ(lagraph::to_string(StopReason::none), "none");
  EXPECT_STREQ(lagraph::to_string(StopReason::converged), "converged");
  EXPECT_STREQ(lagraph::to_string(StopReason::max_iters), "max_iters");
  EXPECT_STREQ(lagraph::to_string(StopReason::diverged), "diverged");
  EXPECT_STREQ(lagraph::to_string(StopReason::cancelled), "cancelled");
  EXPECT_STREQ(lagraph::to_string(StopReason::timeout), "timeout");
  EXPECT_STREQ(lagraph::to_string(StopReason::out_of_memory),
               "out_of_memory");
  EXPECT_TRUE(lagraph::is_interruption(StopReason::cancelled));
  EXPECT_TRUE(lagraph::is_interruption(StopReason::timeout));
  EXPECT_TRUE(lagraph::is_interruption(StopReason::out_of_memory));
  EXPECT_FALSE(lagraph::is_interruption(StopReason::converged));
  EXPECT_FALSE(lagraph::is_interruption(StopReason::max_iters));
}

TEST(LagraphScope, BudgetTripSurfacesAsOutOfMemoryStop) {
  // A budget only a few hundred bytes wide: the setup allocations trip
  // BudgetError, which the Scope absorbs into a clean out_of_memory stop.
  // The graph is built before the scope — the budget governs the
  // algorithm, not the fixture.
  auto g = ring(256);
  Governor gov;
  gov.set_budget(256);
  GovernorScope s(&gov);
  auto res = lagraph::pagerank(g);
  EXPECT_EQ(res.stop, lagraph::StopReason::out_of_memory);
  EXPECT_FALSE(res.converged);
}
