// lagraph::Graph cached properties and the stats utilities.
#include <gtest/gtest.h>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "lagraph/util/stats.hpp"

using gb::Index;
using lagraph::Graph;
using lagraph::Kind;

namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail, one self-loop at 3 (undirected).
  gb::Matrix<double> a(4, 4);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(0, 2);
  add(2, 3);
  a.set_element(3, 3, 1.0);
  return Graph(std::move(a), Kind::undirected);
}

}  // namespace

TEST(Graph, RequiresSquare) {
  gb::Matrix<double> a(2, 3);
  EXPECT_THROW(Graph(std::move(a), Kind::directed), gb::Error);
}

TEST(Graph, Degrees) {
  auto g = triangle_plus_tail();
  auto deg = lagraph::to_dense_std(g.out_degree(), std::int64_t{0});
  EXPECT_EQ(deg, (std::vector<std::int64_t>{2, 2, 3, 2}));  // 3 has loop + 2
  auto indeg = lagraph::to_dense_std(g.in_degree(), std::int64_t{0});
  EXPECT_EQ(indeg, deg);  // symmetric
}

TEST(Graph, SymmetryDetection) {
  auto g = triangle_plus_tail();
  EXPECT_TRUE(g.is_symmetric());

  gb::Matrix<double> d(3, 3);
  d.set_element(0, 1, 1.0);
  Graph dg(std::move(d), Kind::directed);
  EXPECT_FALSE(dg.is_symmetric());

  // Same pattern, different values: not symmetric.
  gb::Matrix<double> vneq(2, 2);
  vneq.set_element(0, 1, 1.0);
  vneq.set_element(1, 0, 2.0);
  Graph vg(std::move(vneq), Kind::directed);
  EXPECT_FALSE(vg.is_symmetric());
}

TEST(Graph, SelfEdges) {
  auto g = triangle_plus_tail();
  EXPECT_EQ(g.nself_edges(), 1u);
}

TEST(Graph, UndirectedViewSymmetrizes) {
  gb::Matrix<double> d(3, 3);
  d.set_element(0, 1, 5.0);
  d.set_element(2, 0, 7.0);
  Graph g(std::move(d), Kind::directed);
  const auto& s = g.undirected_view();
  EXPECT_EQ(s.extract_element(1, 0).value(), 5.0);
  EXPECT_EQ(s.extract_element(0, 2).value(), 7.0);
  EXPECT_EQ(s.nvals(), 4u);
}

TEST(Graph, UndirectedViewIgnoresFalseDeclaredKind) {
  // Regression: a Graph declared undirected but built from an asymmetric
  // matrix used to hand half-edges to every undirected algorithm. The view
  // must trust the actual pattern.
  gb::Matrix<double> a(4, 4);
  a.set_element(1, 2, 3.5);  // one directed edge only
  Graph g(std::move(a), Kind::undirected);
  const auto& s = g.undirected_view();
  EXPECT_EQ(s.nvals(), 2u);
  EXPECT_EQ(s.extract_element(2, 1).value(), 3.5);

  auto cc = lagraph::connected_components(g);
  EXPECT_EQ(cc.extract_element(2).value(), 1u);  // 1 and 2 connected
}

TEST(Graph, StatsAndDescribe) {
  auto g = triangle_plus_tail();
  auto s = lagraph::graph_stats(g);
  EXPECT_EQ(s.n, 4u);
  EXPECT_EQ(s.nedges, 9u);  // 4 undirected edges x2 + loop
  EXPECT_EQ(s.nself, 1u);
  EXPECT_TRUE(s.symmetric);
  EXPECT_EQ(s.max_degree, 3);
  EXPECT_EQ(s.isolated, 0u);
  auto text = lagraph::describe(g);
  EXPECT_NE(text.find("n=4"), std::string::npos);
  EXPECT_NE(text.find("symmetric"), std::string::npos);
}

TEST(Graph, DegreeHistogram) {
  auto a = lagraph::star_graph(9);  // hub degree 8, leaves degree 1
  Graph g(std::move(a), Kind::undirected);
  auto hist = lagraph::degree_histogram(g);
  ASSERT_EQ(hist.size(), 4u);  // buckets up to [8,16)
  EXPECT_EQ(hist[0], 8u);      // eight leaves
  EXPECT_EQ(hist[3], 1u);      // one hub
}

TEST(Graph, InvalidateCacheRecomputes) {
  auto g = triangle_plus_tail();
  (void)g.out_degree();
  g.invalidate_cache();
  auto deg = lagraph::to_dense_std(g.out_degree(), std::int64_t{0});
  EXPECT_EQ(deg[2], 3);
}
