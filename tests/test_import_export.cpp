// §IV: O(1) import/export by move. The arrays change hands; the exported
// matrix is left empty; an export-then-import reconstructs the matrix
// perfectly.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

using gb::Index;
using gb::Matrix;

namespace {

Matrix<double> sample() {
  Matrix<double> a(4, 5);
  std::vector<Index> r = {0, 0, 1, 3, 3};
  std::vector<Index> c = {1, 4, 2, 0, 3};
  std::vector<double> v = {1, 2, 3, 4, 5};
  a.build(r, c, v, gb::Plus{});
  return a;
}

}  // namespace

TEST(ImportExport, CsrRoundTrip) {
  auto a = sample();
  std::vector<Index> r0, c0;
  std::vector<double> v0;
  a.extract_tuples(r0, c0, v0);

  auto arrays = a.export_csr();
  EXPECT_EQ(a.nvals(), 0u);  // contents moved out (§IV: "destroyed")
  EXPECT_EQ(arrays.p.size(), 5u);
  EXPECT_EQ(arrays.i.size(), 5u);
  EXPECT_EQ(arrays.p.back(), 5u);

  auto b = Matrix<double>::import_csr(arrays.nrows, arrays.ncols,
                                      std::move(arrays.p),
                                      std::move(arrays.i),
                                      std::move(arrays.x));
  std::vector<Index> r1, c1;
  std::vector<double> v1;
  b.extract_tuples(r1, c1, v1);
  EXPECT_EQ(r0, r1);
  EXPECT_EQ(c0, c1);
  EXPECT_EQ(v0, v1);
}

TEST(ImportExport, CscRoundTrip) {
  auto a = sample();
  std::vector<Index> r0, c0;
  std::vector<double> v0;
  a.extract_tuples(r0, c0, v0);

  auto arrays = a.export_csc();
  EXPECT_EQ(arrays.p.size(), 6u);  // ncols + 1
  auto b = Matrix<double>::import_csc(arrays.nrows, arrays.ncols,
                                      std::move(arrays.p),
                                      std::move(arrays.i),
                                      std::move(arrays.x));
  std::vector<Index> r1, c1;
  std::vector<double> v1;
  b.extract_tuples(r1, c1, v1);
  EXPECT_EQ(r0, r1);
  EXPECT_EQ(c0, c1);
  EXPECT_EQ(v0, v1);
}

TEST(ImportExport, ImportValidates) {
  gb::Buf<Index> p = {0, 1};  // wrong size for 3 rows
  gb::Buf<Index> i = {0};
  gb::Buf<double> x = {1.0};
  EXPECT_THROW(Matrix<double>::import_csr(3, 3, std::move(p), std::move(i),
                                          std::move(x)),
               gb::Error);
}

TEST(ImportExport, ImportedMatrixIsFullyOperational) {
  // Build CSR arrays by hand: 3x3, row 0 -> {1:2.0}, row 2 -> {0:5.0, 2:7.0}.
  gb::Buf<Index> p = {0, 1, 1, 3};
  gb::Buf<Index> i = {1, 0, 2};
  gb::Buf<double> x = {2.0, 5.0, 7.0};
  auto a = Matrix<double>::import_csr(3, 3, std::move(p), std::move(i),
                                      std::move(x));
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_EQ(a.extract_element(2, 0).value(), 5.0);

  // The imported object supports incremental updates and operations.
  a.set_element(1, 1, 9.0);
  EXPECT_EQ(a.nvals(), 4u);
  gb::Vector<double> u(3);
  u.set_element(2, 1.0);
  gb::Vector<double> w(3);
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u);
  EXPECT_EQ(w.extract_element(2).value(), 7.0);
}

TEST(ImportExport, ExportAfterImportIsPerfectReconstruction) {
  // "After an export of A, and then an import of the same arrays, the
  // GraphBLAS matrix A is perfectly reconstructed" (§IV).
  auto a = sample();
  auto arrays = a.export_csr();
  auto b = Matrix<double>::import_csr(arrays.nrows, arrays.ncols,
                                      std::move(arrays.p),
                                      std::move(arrays.i),
                                      std::move(arrays.x));
  auto arrays2 = b.export_csr();
  auto c = Matrix<double>::import_csr(arrays2.nrows, arrays2.ncols,
                                      std::move(arrays2.p),
                                      std::move(arrays2.i),
                                      std::move(arrays2.x));
  auto d = sample();
  std::vector<Index> r1, c1, r2, c2;
  std::vector<double> v1, v2;
  c.extract_tuples(r1, c1, v1);
  d.extract_tuples(r2, c2, v2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(v1, v2);
}

TEST(ImportExport, ExportOfByColMatrixStillYieldsCsr) {
  // "If the GraphBLAS implementation does not support the format ... the
  // effect is the same; only the performance differs" (§IV).
  Matrix<double> a(3, 3, gb::Layout::by_col);
  a.set_element(0, 2, 1.0);
  a.set_element(2, 1, 2.0);
  auto arrays = a.export_csr();
  EXPECT_EQ(arrays.p.size(), 4u);
  EXPECT_EQ(arrays.p.back(), 2u);
  EXPECT_EQ(arrays.i[0], 2u);  // row 0 holds column 2
}
