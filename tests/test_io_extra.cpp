// Binary serialisation (the §IV import/export arrays as an on-disk format)
// and plain-text edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "lagraph/util/check.hpp"
#include "lagraph/util/edgelist.hpp"
#include "lagraph/util/generator.hpp"
#include "lagraph/util/serialize.hpp"

using gb::Index;

TEST(Serialize, RoundTripRandomMatrix) {
  auto a = lagraph::randomize_weights(lagraph::rmat(7, 6, 3), 0.1, 9.0, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  lagraph::save_matrix(a, buf);
  auto b = lagraph::load_matrix(buf);
  EXPECT_TRUE(lagraph::isequal(a, b));
}

TEST(Serialize, RoundTripEmptyAndRectangular) {
  gb::Matrix<double> empty(5, 9);
  std::stringstream buf1(std::ios::in | std::ios::out | std::ios::binary);
  lagraph::save_matrix(empty, buf1);
  auto e2 = lagraph::load_matrix(buf1);
  EXPECT_EQ(e2.nrows(), 5u);
  EXPECT_EQ(e2.ncols(), 9u);
  EXPECT_EQ(e2.nvals(), 0u);

  auto rect = lagraph::random_matrix(3, 17, 20, 5);
  std::stringstream buf2(std::ios::in | std::ios::out | std::ios::binary);
  lagraph::save_matrix(rect, buf2);
  EXPECT_TRUE(lagraph::isequal(rect, lagraph::load_matrix(buf2)));
}

TEST(Serialize, FileRoundTripAndSourceUnchanged) {
  auto a = lagraph::grid2d(6, 6, 2, 5.0);
  Index before = a.nvals();
  lagraph::save_matrix(a, "/tmp/lagraph_serialize_test.bin");
  EXPECT_EQ(a.nvals(), before);  // save must not destroy the source
  auto b = lagraph::load_matrix("/tmp/lagraph_serialize_test.bin");
  EXPECT_TRUE(lagraph::isequal(a, b));
}

TEST(Serialize, RejectsCorruptInput) {
  auto reject = [](const std::string& bytes) {
    std::stringstream buf(bytes,
                          std::ios::in | std::ios::out | std::ios::binary);
    EXPECT_THROW(lagraph::load_matrix(buf), gb::Error);
  };
  reject("");                      // no magic
  reject("XXXX????????????????");  // wrong magic
  // Valid magic but truncated header.
  reject(std::string("LAGR\x01\x00\x00", 7));

  // Valid header, poisoned pointer array.
  auto a = lagraph::path_graph(4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  lagraph::save_matrix(a, buf);
  auto s = buf.str();
  s[4 + 4 + 24 + 8] ^= 0x7F;  // flip a byte inside p[1]
  std::stringstream bad(s, std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(lagraph::load_matrix(bad), gb::Error);
  EXPECT_THROW(lagraph::load_matrix("/nonexistent/file.bin"), gb::Error);
}

namespace {

std::string serialized_bytes(const gb::Matrix<double>& a) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  lagraph::save_matrix(a, buf);
  return buf.str();
}

void expect_rejected(const std::string& bytes) {
  std::stringstream buf(bytes, std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(lagraph::load_matrix(buf), gb::Error);
}

}  // namespace

TEST(Serialize, ChecksumCatchesEveryBitFlip) {
  auto a = lagraph::randomize_weights(lagraph::path_graph(5), 0.5, 4.0, 11);
  const std::string good = serialized_bytes(a);
  // Flip one bit in every byte after the magic (the magic has its own
  // check); each corruption must be rejected, none may load quietly.
  for (std::size_t off = 4; off < good.size(); ++off) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    expect_rejected(bad);
  }
}

TEST(Serialize, RejectsTruncationAtEveryLength) {
  auto a = lagraph::path_graph(4);
  const std::string good = serialized_bytes(a);
  for (std::size_t len = 0; len < good.size(); ++len) {
    expect_rejected(good.substr(0, len));
  }
}

TEST(Serialize, RejectsTrailingGarbage) {
  auto a = lagraph::path_graph(4);
  expect_rejected(serialized_bytes(a) + "junk");
  expect_rejected(serialized_bytes(a) + std::string(1, '\0'));
}

TEST(Serialize, RejectsBadMagicAndVersion) {
  auto a = lagraph::path_graph(4);
  std::string bad_magic = serialized_bytes(a);
  bad_magic[0] = 'X';
  expect_rejected(bad_magic);

  std::string bad_version = serialized_bytes(a);
  bad_version[4] = 99;  // unsupported version
  expect_rejected(bad_version);
}

TEST(Serialize, ReadsVersion1FilesWithoutChecksum) {
  auto a = lagraph::randomize_weights(lagraph::grid2d(3, 4, 2, 1.0), 0.1, 9.0,
                                      7);
  // A v1 file is the v2 layout minus the 4-byte CRC footer, with the
  // version field rewritten; the reader must still accept it.
  std::string v1 = serialized_bytes(a);
  v1[4] = 1;
  v1.resize(v1.size() - 4);
  std::stringstream buf(v1, std::ios::in | std::ios::out | std::ios::binary);
  auto b = lagraph::load_matrix(buf);
  EXPECT_TRUE(lagraph::isequal(a, b));

  // ...but v1 + trailing bytes is still rejected.
  expect_rejected(v1 + "x");
}

TEST(EdgeList, ReadBasicAndWeighted) {
  std::istringstream in(
      "# comment\n"
      "% another comment\n"
      "0 1\n"
      "1 2 2.5\n"
      "\n"
      "3 0 7\n");
  auto a = lagraph::read_edge_list(in);
  EXPECT_EQ(a.nrows(), 4u);
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_EQ(a.extract_element(0, 1).value(), 1.0);  // default weight
  EXPECT_EQ(a.extract_element(1, 2).value(), 2.5);
  EXPECT_EQ(a.extract_element(3, 0).value(), 7.0);
}

TEST(EdgeList, SymmetricAndExplicitSize) {
  std::istringstream in("0 1\n2 2\n");
  lagraph::EdgeListOptions opt;
  opt.symmetric = true;
  opt.nvertices = 5;
  auto a = lagraph::read_edge_list(in, opt);
  EXPECT_EQ(a.nrows(), 5u);
  EXPECT_EQ(a.nvals(), 3u);  // 0-1 mirrored + self-loop once
  EXPECT_TRUE(a.extract_element(1, 0).has_value());
}

TEST(EdgeList, Rejections) {
  std::istringstream bad("0 not_a_number\n");
  EXPECT_THROW(lagraph::read_edge_list(bad), gb::Error);

  std::istringstream over("0 9\n");
  lagraph::EdgeListOptions opt;
  opt.nvertices = 5;
  EXPECT_THROW(lagraph::read_edge_list(over, opt), gb::Error);
  EXPECT_THROW(lagraph::read_edge_list("/nonexistent/file.el"), gb::Error);
}

TEST(EdgeList, WriteReadRoundTrip) {
  auto a = lagraph::randomize_weights(lagraph::erdos_renyi(20, 60, 9), 1.0,
                                      3.0, 10);
  std::stringstream buf;
  lagraph::write_edge_list(a, buf);
  lagraph::EdgeListOptions opt;
  opt.nvertices = 20;
  auto b = lagraph::read_edge_list(buf, opt);
  EXPECT_TRUE(lagraph::isequal(a, b));
}
