// Argument hardening across the algorithm layer: every driver must reject
// the empty (zero-vertex) graph, out-of-range vertex ids, and nonsensical
// numeric parameters with gb::Error(invalid_value / invalid_index) — never
// crash, loop forever, or return garbage.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/generator.hpp"

using gb::Index;
using lagraph::Graph;
using lagraph::Kind;

namespace {

Graph empty_graph() { return Graph(gb::Matrix<double>(0, 0), Kind::directed); }

Graph small_graph() {
  return Graph(lagraph::path_graph(4), Kind::undirected);
}

struct BadCall {
  const char* name;
  std::function<void()> call;
};

void expect_invalid(const BadCall& c) {
  try {
    c.call();
    FAIL() << c.name << ": expected gb::Error, got success";
  } catch (const gb::Error& e) {
    EXPECT_TRUE(e.info() == gb::Info::invalid_value ||
                e.info() == gb::Info::invalid_index)
        << c.name << ": wrong Info " << gb::to_string(e.info());
  } catch (...) {
    FAIL() << c.name << ": wrong exception type";
  }
}

}  // namespace

TEST(LagraphArgs, EveryDriverRejectsEmptyGraph) {
  const std::vector<BadCall> calls = {
      {"bfs", [] { lagraph::bfs(empty_graph(), 0); }},
      {"sssp_bellman_ford",
       [] { lagraph::sssp_bellman_ford(empty_graph(), 0); }},
      {"sssp_delta_stepping",
       [] { lagraph::sssp_delta_stepping(empty_graph(), 0, 1.0); }},
      {"apsp", [] { lagraph::apsp(empty_graph()); }},
      {"pagerank", [] { lagraph::pagerank(empty_graph()); }},
      {"betweenness", [] { lagraph::betweenness(empty_graph(), {0}); }},
      {"triangle_count", [] { lagraph::triangle_count(empty_graph()); }},
      {"ktruss", [] { lagraph::ktruss(empty_graph(), 3); }},
      {"connected_components",
       [] { lagraph::connected_components(empty_graph()); }},
      {"strongly_connected_components",
       [] { lagraph::strongly_connected_components(empty_graph()); }},
      {"kcore", [] { lagraph::kcore(empty_graph()); }},
      {"mis", [] { lagraph::mis(empty_graph()); }},
      {"coloring", [] { lagraph::coloring(empty_graph()); }},
      {"maximal_matching", [] { lagraph::maximal_matching(empty_graph()); }},
      {"mcl", [] { lagraph::mcl(empty_graph()); }},
      {"peer_pressure", [] { lagraph::peer_pressure(empty_graph()); }},
      {"local_clustering", [] { lagraph::local_clustering(empty_graph(), 0); }},
      {"astar",
       [] { lagraph::astar(empty_graph(), 0, 0); }},
      {"subgraph_count", [] { lagraph::subgraph_count(empty_graph()); }},
      {"wl_kernel",
       [] { lagraph::wl_kernel(empty_graph(), empty_graph(), 2); }},
      {"wl_labels", [] { lagraph::wl_labels(empty_graph(), 2); }},
      {"gcn_inference",
       [] {
         lagraph::gcn_inference(empty_graph(), gb::Matrix<double>(0, 2), {});
       }},
  };
  for (const auto& c : calls) expect_invalid(c);
}

TEST(LagraphArgs, OutOfRangeVertexIdsRejected) {
  const std::vector<BadCall> calls = {
      {"bfs source", [] { lagraph::bfs(small_graph(), 99); }},
      {"sssp_bellman_ford source",
       [] { lagraph::sssp_bellman_ford(small_graph(), 99); }},
      {"sssp_delta_stepping source",
       [] { lagraph::sssp_delta_stepping(small_graph(), 99, 1.0); }},
      {"betweenness source",
       [] { lagraph::betweenness(small_graph(), {1, 99}); }},
      {"local_clustering seed",
       [] { lagraph::local_clustering(small_graph(), 99); }},
      {"astar source", [] { lagraph::astar(small_graph(), 99, 0); }},
      {"astar target", [] { lagraph::astar(small_graph(), 0, 99); }},
  };
  for (const auto& c : calls) expect_invalid(c);
}

TEST(LagraphArgs, NumericParametersValidated) {
  const std::vector<BadCall> calls = {
      {"pagerank damping=0", [] { lagraph::pagerank(small_graph(), 0.0); }},
      {"pagerank damping=1", [] { lagraph::pagerank(small_graph(), 1.0); }},
      {"pagerank damping=-1", [] { lagraph::pagerank(small_graph(), -1.0); }},
      {"pagerank tol=0",
       [] { lagraph::pagerank(small_graph(), 0.85, 0.0); }},
      {"pagerank tol=-1",
       [] { lagraph::pagerank(small_graph(), 0.85, -1.0); }},
      {"pagerank max_iters=0",
       [] { lagraph::pagerank(small_graph(), 0.85, 1e-9, 0); }},
      {"mcl inflation=1", [] { lagraph::mcl(small_graph(), 1.0); }},
      {"mcl inflation=0", [] { lagraph::mcl(small_graph(), 0.0); }},
      {"mcl max_iters=0", [] { lagraph::mcl(small_graph(), 2.0, 0); }},
      {"mcl prune<0", [] { lagraph::mcl(small_graph(), 2.0, 10, -1.0); }},
      {"peer_pressure max_iters=0",
       [] { lagraph::peer_pressure(small_graph(), 0); }},
      {"sssp delta=0",
       [] { lagraph::sssp_delta_stepping(small_graph(), 0, 0.0); }},
      {"sssp delta<0",
       [] { lagraph::sssp_delta_stepping(small_graph(), 0, -2.0); }},
      {"ktruss k=2", [] { lagraph::ktruss(small_graph(), 2); }},
      {"wl_kernel iters<0",
       [] { lagraph::wl_kernel(small_graph(), small_graph(), -1); }},
      {"wl_labels iters<0", [] { lagraph::wl_labels(small_graph(), -1); }},
  };
  for (const auto& c : calls) expect_invalid(c);
}

TEST(LagraphArgs, ValidationFiresBeforeAnyWork) {
  // A rejected call must not leave metered allocations behind.
  const std::size_t before = gb::platform::MemoryMeter::current_bytes();
  for (int k = 0; k < 3; ++k) {
    EXPECT_THROW(lagraph::pagerank(empty_graph()), gb::Error);
    EXPECT_THROW(lagraph::mcl(small_graph(), 1.0), gb::Error);
  }
  EXPECT_EQ(gb::platform::MemoryMeter::current_bytes(), before);
}
