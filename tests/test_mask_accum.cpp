// The accum-then-mask write-back rule, validated against the independent
// dense restatement in reference/dense_ref.hpp across the full descriptor
// sweep. This is the single most important conformance surface: every
// operation funnels through it.
#include <gtest/gtest.h>

#include "test_common.hpp"

using namespace testutil;
using gb::Index;

namespace {

// Drive write-back through gb::apply with Identity (the thinnest wrapper
// around it) and mirror with the dense mimic.
void check_vector_case(double cdens, double mdens, double tdens, bool accum,
                       const gb::Descriptor& d, std::uint64_t seed) {
  const Index n = 40;
  auto c = random_vector(n, cdens, seed);
  auto m = random_vector(n, mdens, seed + 1);
  auto t = random_vector(n, tdens, seed + 2);

  auto dc = ref::from_gb(c);
  auto dm = ref::from_gb(m);
  auto dt = ref::from_gb(t);

  gb::Plus plus;
  if (accum) {
    gb::apply(c, m, plus, gb::Identity{}, t, d);
    ref::apply(dc, &dm, &plus, gb::Identity{}, dt, d);
  } else {
    gb::apply(c, m, gb::no_accum, gb::Identity{}, t, d);
    ref::apply(dc, &dm, static_cast<const gb::Plus*>(nullptr), gb::Identity{},
               dt, d);
  }
  EXPECT_TRUE(ref::equal(dc, c)) << "desc=" << desc_name(d)
                                 << " accum=" << accum << " seed=" << seed;
}

void check_matrix_case(double cdens, double mdens, double tdens, bool accum,
                       const gb::Descriptor& d, std::uint64_t seed) {
  const Index n = 12, m = 9;
  auto c = random_matrix(n, m, cdens, seed);
  auto mask = random_matrix(n, m, mdens, seed + 1);
  auto t = random_matrix(n, m, tdens, seed + 2);

  auto dc = ref::from_gb(c);
  auto dmask = ref::from_gb(mask);
  auto dt = ref::from_gb(t);

  gb::Plus plus;
  if (accum) {
    gb::apply(c, mask, plus, gb::Identity{}, t, d);
    ref::apply(dc, &dmask, &plus, gb::Identity{}, dt, d);
  } else {
    gb::apply(c, mask, gb::no_accum, gb::Identity{}, t, d);
    ref::apply(dc, &dmask, static_cast<const gb::Plus*>(nullptr),
               gb::Identity{}, dt, d);
  }
  EXPECT_TRUE(ref::equal(dc, c)) << "desc=" << desc_name(d)
                                 << " accum=" << accum << " seed=" << seed;
}

}  // namespace

class WriteBackSweep : public ::testing::TestWithParam<int> {};

TEST_P(WriteBackSweep, VectorMatchesDenseMimic) {
  std::uint64_t seed = 1000 + GetParam() * 17;
  for (const auto& d : mask_descriptor_sweep()) {
    for (bool accum : {false, true}) {
      check_vector_case(0.4, 0.5, 0.4, accum, d, seed);
      check_vector_case(0.0, 0.5, 0.4, accum, d, seed + 3);  // empty C
      check_vector_case(0.4, 0.5, 0.0, accum, d, seed + 6);  // empty T
      check_vector_case(1.0, 0.3, 1.0, accum, d, seed + 9);  // dense C, T
    }
  }
}

TEST_P(WriteBackSweep, MatrixMatchesDenseMimic) {
  std::uint64_t seed = 2000 + GetParam() * 23;
  for (const auto& d : mask_descriptor_sweep()) {
    for (bool accum : {false, true}) {
      check_matrix_case(0.3, 0.4, 0.3, accum, d, seed);
      check_matrix_case(0.0, 0.4, 0.3, accum, d, seed + 3);
      check_matrix_case(0.3, 0.4, 0.0, accum, d, seed + 6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteBackSweep, ::testing::Range(0, 5));

TEST(WriteBack, UnmaskedNoAccumReplacesContents) {
  auto c = random_vector(20, 0.5, 7);
  gb::Vector<double> t(20);
  t.set_element(3, 42.0);
  gb::apply(c, gb::no_mask, gb::no_accum, gb::Identity{}, t);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extract_element(3).value(), 42.0);
}

TEST(WriteBack, ValuedMaskIgnoresZeroEntries) {
  gb::Vector<double> c(4);
  gb::Vector<double> mask(4);
  mask.set_element(0, 0.0);  // present but false-valued
  mask.set_element(1, 2.0);
  auto t = gb::Vector<double>::full(4, 5.0);
  gb::apply(c, mask, gb::no_accum, gb::Identity{}, t);
  EXPECT_EQ(c.nvals(), 1u);  // only position 1 writable
  EXPECT_EQ(c.extract_element(1).value(), 5.0);

  // Structural: position 0 becomes writable too.
  gb::Vector<double> c2(4);
  gb::apply(c2, mask, gb::no_accum, gb::Identity{}, t, gb::desc_s);
  EXPECT_EQ(c2.nvals(), 2u);
}

TEST(WriteBack, ReplaceDeletesOutsideMask) {
  auto c = gb::Vector<double>::full(4, 1.0);
  gb::Vector<bool> mask(4);
  mask.set_element(2, true);
  gb::Vector<double> t(4);
  t.set_element(2, 9.0);
  // With replace: everything outside the mask is deleted.
  gb::apply(c, mask, gb::no_accum, gb::Identity{}, t, gb::desc_rs);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.extract_element(2).value(), 9.0);
}

TEST(WriteBack, NoReplaceKeepsOutsideMask) {
  auto c = gb::Vector<double>::full(4, 1.0);
  gb::Vector<bool> mask(4);
  mask.set_element(2, true);
  gb::Vector<double> t(4);
  t.set_element(2, 9.0);
  gb::apply(c, mask, gb::no_accum, gb::Identity{}, t, gb::desc_s);
  EXPECT_EQ(c.nvals(), 4u);
  EXPECT_EQ(c.extract_element(2).value(), 9.0);
  EXPECT_EQ(c.extract_element(0).value(), 1.0);
}

TEST(WriteBack, AccumulatorUnionSemantics) {
  gb::Vector<double> c(4);
  c.set_element(0, 1.0);
  c.set_element(1, 2.0);
  gb::Vector<double> t(4);
  t.set_element(1, 10.0);
  t.set_element(2, 20.0);
  gb::apply(c, gb::no_mask, gb::Plus{}, gb::Identity{}, t);
  EXPECT_EQ(c.extract_element(0).value(), 1.0);   // C only: kept
  EXPECT_EQ(c.extract_element(1).value(), 12.0);  // both: accumulated
  EXPECT_EQ(c.extract_element(2).value(), 20.0);  // T only: inserted
}
