// GrB_Matrix object semantics.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

using gb::Index;
using gb::Matrix;
using gb::Vector;

TEST(Matrix, EmptyAndShape) {
  Matrix<double> a(3, 5);
  EXPECT_EQ(a.nrows(), 3u);
  EXPECT_EQ(a.ncols(), 5u);
  EXPECT_EQ(a.nvals(), 0u);
}

TEST(Matrix, SetExtractRemove) {
  Matrix<double> a(4, 4);
  a.set_element(1, 2, 1.5);
  a.set_element(3, 0, 3.5);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(1, 2).value(), 1.5);
  EXPECT_FALSE(a.extract_element(0, 0).has_value());
  a.remove_element(1, 2);
  EXPECT_EQ(a.nvals(), 1u);
  EXPECT_FALSE(a.extract_element(1, 2).has_value());
  EXPECT_THROW(a.set_element(4, 0, 1.0), gb::Error);
  EXPECT_THROW((void)a.extract_element(0, 9), gb::Error);
}

TEST(Matrix, SetOverwritesAndRemoveAfterWait) {
  Matrix<int> a(3, 3);
  a.set_element(0, 0, 1);
  a.set_element(0, 0, 2);
  EXPECT_EQ(a.nvals(), 1u);  // forces the wait
  EXPECT_EQ(a.extract_element(0, 0).value(), 2);
  // Now the entry is in the materialised store; removal uses a zombie.
  a.remove_element(0, 0);
  EXPECT_EQ(a.nvals(), 0u);
}

TEST(Matrix, BuildWithDuplicates) {
  Matrix<double> a(3, 3);
  std::vector<Index> r = {0, 1, 0, 2, 0};
  std::vector<Index> c = {1, 2, 1, 0, 2};
  std::vector<double> v = {1, 2, 3, 4, 5};
  a.build(r, c, v, gb::Plus{});
  EXPECT_EQ(a.nvals(), 4u);
  EXPECT_EQ(a.extract_element(0, 1).value(), 4.0);  // 1+3
  EXPECT_EQ(a.extract_element(2, 0).value(), 4.0);
}

TEST(Matrix, BuildRejectsNonEmpty) {
  Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  std::vector<Index> r = {1}, c = {1};
  std::vector<double> v = {1.0};
  EXPECT_THROW(a.build(r, c, v, gb::Plus{}), gb::Error);
}

TEST(Matrix, ExtractTuplesRowMajorSorted) {
  Matrix<int> a(3, 3);
  a.set_element(2, 0, 1);
  a.set_element(0, 2, 2);
  a.set_element(0, 1, 3);
  std::vector<Index> r, c;
  std::vector<int> v;
  a.extract_tuples(r, c, v);
  EXPECT_EQ(r, (std::vector<Index>{0, 0, 2}));
  EXPECT_EQ(c, (std::vector<Index>{1, 2, 0}));
  EXPECT_EQ(v, (std::vector<int>{3, 2, 1}));
}

TEST(Matrix, IdentityAndDiag) {
  auto i3 = Matrix<double>::identity(3, 2.0);
  EXPECT_EQ(i3.nvals(), 3u);
  EXPECT_EQ(i3.extract_element(1, 1).value(), 2.0);
  EXPECT_FALSE(i3.extract_element(0, 1).has_value());

  Vector<double> v(4);
  v.set_element(1, 5.0);
  v.set_element(3, 7.0);
  auto d = Matrix<double>::diag(v);
  EXPECT_EQ(d.nvals(), 2u);
  EXPECT_EQ(d.extract_element(3, 3).value(), 7.0);
}

TEST(Matrix, ResizeDropsOutOfRange) {
  Matrix<double> a(4, 4);
  a.set_element(0, 0, 1.0);
  a.set_element(3, 3, 2.0);
  a.set_element(1, 3, 3.0);
  a.resize(2, 2);
  EXPECT_EQ(a.nrows(), 2u);
  EXPECT_EQ(a.nvals(), 1u);
  a.resize(8, 8);
  EXPECT_EQ(a.nvals(), 1u);
  EXPECT_EQ(a.extract_element(0, 0).value(), 1.0);
}

TEST(Matrix, DupIsDeepCopy) {
  Matrix<double> a(2, 2);
  a.set_element(0, 1, 1.0);
  auto b = a.dup();
  b.set_element(1, 0, 2.0);
  EXPECT_EQ(a.nvals(), 1u);
  EXPECT_EQ(b.nvals(), 2u);
}

TEST(Matrix, ClearKeepsShape) {
  Matrix<double> a(5, 7);
  a.set_element(4, 6, 1.0);
  a.clear();
  EXPECT_EQ(a.nvals(), 0u);
  EXPECT_EQ(a.nrows(), 5u);
  EXPECT_EQ(a.ncols(), 7u);
}

TEST(Matrix, MemoryBytesGrowsWithEntries) {
  Matrix<double> a(100, 100);
  auto empty_bytes = a.memory_bytes();
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index i = 0; i < 100; ++i) {
    r.push_back(i);
    c.push_back((i * 7) % 100);
    v.push_back(1.0);
  }
  a.build(r, c, v, gb::Plus{});
  EXPECT_GT(a.memory_bytes(), empty_bytes);
}

TEST(Matrix, BoolMatrixWorks) {
  Matrix<bool> a(3, 3);
  a.set_element(0, 1, true);
  a.set_element(1, 2, true);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(0, 1).value(), true);
}
