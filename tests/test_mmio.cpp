// Matrix Market I/O (§III).
#include <gtest/gtest.h>

#include <sstream>

#include "lagraph/util/check.hpp"
#include "lagraph/util/mmio.hpp"

using gb::Index;

TEST(Mmio, ReadCoordinateReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 2\n"
      "1 2 1.5\n"
      "3 4 -2.5\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nrows(), 3u);
  EXPECT_EQ(a.ncols(), 4u);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(0, 1).value(), 1.5);
  EXPECT_EQ(a.extract_element(2, 3).value(), -2.5);
}

TEST(Mmio, ReadPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.extract_element(0, 0).value(), 1.0);
  EXPECT_EQ(a.extract_element(1, 1).value(), 1.0);
}

TEST(Mmio, SymmetricExpands) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nvals(), 3u);  // (1,0), (0,1), (2,2)
  EXPECT_EQ(a.extract_element(0, 1).value(), 5.0);
  EXPECT_EQ(a.extract_element(1, 0).value(), 5.0);
}

TEST(Mmio, SkewSymmetricNegates) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.extract_element(1, 0).value(), 3.0);
  EXPECT_EQ(a.extract_element(0, 1).value(), -3.0);
}

TEST(Mmio, ArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n0.0\n0.0\n4.0\n");  // column-major
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(0, 0).value(), 1.0);
  EXPECT_EQ(a.extract_element(1, 1).value(), 4.0);
}

TEST(Mmio, RejectsMalformed) {
  auto reject = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(lagraph::mm_read(in), gb::Error) << text;
  };
  reject("not a banner\n1 1 0\n");
  reject("%%MatrixMarket tensor coordinate real general\n1 1 0\n");
  reject("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  reject("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  reject("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(lagraph::mm_read("/nonexistent/path.mtx"), gb::Error);
}

namespace {

// Parse `text`, assert it throws gb::Error{invalid_value} and that the
// message mentions `needle` (typically the offending line number).
void expect_reject(const char* text, const std::string& needle) {
  std::istringstream in(text);
  try {
    lagraph::mm_read(in);
    FAIL() << "expected gb::Error for:\n" << text;
  } catch (const gb::Error& e) {
    EXPECT_EQ(e.info(), gb::Info::invalid_value) << text;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "' for:\n"
        << text;
  }
}

}  // namespace

TEST(MmioCorrupt, TruncatedEntryList) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 1.0\n",
      "truncated entry list");
}

TEST(MmioCorrupt, MoreEntriesThanDeclared) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "1 1 1.0\n"
      "2 2 2.0\n",
      "line 4");
}

TEST(MmioCorrupt, IndexOutOfRange) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "5 1 1.0\n",
      "line 3");
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "0 1 1.0\n",  // Matrix Market is 1-based; 0 is out of range
      "out of range");
}

TEST(MmioCorrupt, IndexOverflows64Bits) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "99999999999999999999999999 1 1.0\n",
      "overflows 64 bits");
}

TEST(MmioCorrupt, NonNumericFields) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "one 1 1.0\n",
      "non-numeric row index");
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 abc\n",
      "non-numeric entry value");
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 x 1\n"
      "1 1 1.0\n",
      "non-numeric column count");
}

TEST(MmioCorrupt, MissingValueField) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n",
      "missing entry value");
}

TEST(MmioCorrupt, TrailingFieldsOnEntry) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0 extra\n",
      "trailing fields");
}

TEST(MmioCorrupt, DeclaredNnzExceedsCapacity) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 100\n"
      "1 1 1.0\n",
      "exceeds matrix capacity");
}

TEST(MmioCorrupt, MissingSizeLine) {
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "% only comments follow\n",
      "missing size line");
}

TEST(MmioCorrupt, TruncatedArrayData) {
  expect_reject(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n2.0\n",
      "truncated array data");
}

TEST(MmioCorrupt, ExtraArrayData) {
  expect_reject(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n2.0\n3.0\n4.0\n5.0\n",
      "more array values");
}

TEST(MmioCorrupt, PatternArrayIsInvalid) {
  expect_reject(
      "%%MatrixMarket matrix array pattern general\n"
      "2 2\n",
      "pattern field is invalid");
}

TEST(MmioCorrupt, ErrorNamesOffendingLine) {
  // Line numbering must account for comment and blank lines.
  expect_reject(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 bad 2.0\n",
      "line 6");
}

TEST(Mmio, WriteReadRoundTrip) {
  gb::Matrix<double> a(5, 3);
  a.set_element(0, 2, 1.25);
  a.set_element(4, 0, -9.5);
  a.set_element(2, 1, 1e-17);
  std::ostringstream out;
  lagraph::mm_write(a, out);
  std::istringstream in(out.str());
  auto b = lagraph::mm_read(in);
  EXPECT_TRUE(lagraph::isequal(a, b));
}

TEST(Mmio, FileRoundTrip) {
  gb::Matrix<double> a(4, 4);
  a.set_element(1, 2, 3.5);
  const std::string path = "/tmp/lagraph_test_roundtrip.mtx";
  lagraph::mm_write(a, path);
  auto b = lagraph::mm_read(path);
  EXPECT_TRUE(lagraph::isequal(a, b));
}
