// Matrix Market I/O (§III).
#include <gtest/gtest.h>

#include <sstream>

#include "lagraph/util/check.hpp"
#include "lagraph/util/mmio.hpp"

using gb::Index;

TEST(Mmio, ReadCoordinateReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "3 4 2\n"
      "1 2 1.5\n"
      "3 4 -2.5\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nrows(), 3u);
  EXPECT_EQ(a.ncols(), 4u);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(0, 1).value(), 1.5);
  EXPECT_EQ(a.extract_element(2, 3).value(), -2.5);
}

TEST(Mmio, ReadPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.extract_element(0, 0).value(), 1.0);
  EXPECT_EQ(a.extract_element(1, 1).value(), 1.0);
}

TEST(Mmio, SymmetricExpands) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nvals(), 3u);  // (1,0), (0,1), (2,2)
  EXPECT_EQ(a.extract_element(0, 1).value(), 5.0);
  EXPECT_EQ(a.extract_element(1, 0).value(), 5.0);
}

TEST(Mmio, SkewSymmetricNegates) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.extract_element(1, 0).value(), 3.0);
  EXPECT_EQ(a.extract_element(0, 1).value(), -3.0);
}

TEST(Mmio, ArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n0.0\n0.0\n4.0\n");  // column-major
  auto a = lagraph::mm_read(in);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.extract_element(0, 0).value(), 1.0);
  EXPECT_EQ(a.extract_element(1, 1).value(), 4.0);
}

TEST(Mmio, RejectsMalformed) {
  auto reject = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(lagraph::mm_read(in), gb::Error) << text;
  };
  reject("not a banner\n1 1 0\n");
  reject("%%MatrixMarket tensor coordinate real general\n1 1 0\n");
  reject("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  reject("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  reject("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(lagraph::mm_read("/nonexistent/path.mtx"), gb::Error);
}

TEST(Mmio, WriteReadRoundTrip) {
  gb::Matrix<double> a(5, 3);
  a.set_element(0, 2, 1.25);
  a.set_element(4, 0, -9.5);
  a.set_element(2, 1, 1e-17);
  std::ostringstream out;
  lagraph::mm_write(a, out);
  std::istringstream in(out.str());
  auto b = lagraph::mm_read(in);
  EXPECT_TRUE(lagraph::isequal(a, b));
}

TEST(Mmio, FileRoundTrip) {
  gb::Matrix<double> a(4, 4);
  a.set_element(1, 2, 3.5);
  const std::string path = "/tmp/lagraph_test_roundtrip.mtx";
  lagraph::mm_write(a, path);
  auto b = lagraph::mm_read(path);
  EXPECT_TRUE(lagraph::isequal(a, b));
}
