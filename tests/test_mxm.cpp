// mxm: Gustavson, dot, and heap must all agree with the dense mimic across
// semirings, masks (plain / complemented / structural), and transposes —
// the "6 functions x all semirings" expansion of §II-A.
#include <gtest/gtest.h>

#include "lagraph/util/check.hpp"
#include "test_common.hpp"

using namespace testutil;
using gb::Index;
using gb::MxmMethod;

namespace {

const std::vector<MxmMethod> kMethods = {MxmMethod::gustavson, MxmMethod::dot,
                                         MxmMethod::heap};

}  // namespace

class MxmSweep : public ::testing::TestWithParam<int> {};

TEST_P(MxmSweep, AllMethodsMatchMimicUnmasked) {
  std::uint64_t seed = 3100 + GetParam() * 97;
  auto a = random_matrix(12, 12, 0.3, seed);
  auto b = random_matrix(12, 12, 0.3, seed + 1);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);

  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      gb::Descriptor d;
      d.transpose_a = ta;
      d.transpose_b = tb;
      ref::DenseMat<double> expect(12, 12);
      ref::mxm(expect, static_cast<const ref::DenseMat<bool>*>(nullptr),
               static_cast<const gb::Plus*>(nullptr), gb::plus_times<double>(),
               da, db, d);
      for (auto method : kMethods) {
        d.mxm = method;
        gb::Matrix<double> c(12, 12);
        auto used = gb::mxm(c, gb::no_mask, gb::no_accum,
                            gb::plus_times<double>(), a, b, d);
        EXPECT_EQ(used, method);
        EXPECT_TRUE(ref::equal(expect, c))
            << "method=" << static_cast<int>(method) << " ta=" << ta
            << " tb=" << tb;
      }
    }
  }
}

TEST_P(MxmSweep, MaskedVariantsMatchMimic) {
  std::uint64_t seed = 3300 + GetParam() * 101;
  auto a = random_matrix(10, 10, 0.35, seed);
  auto b = random_matrix(10, 10, 0.35, seed + 1);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);

  for (auto d : mask_descriptor_sweep()) {
    auto m = random_matrix(10, 10, 0.4, seed + 2);
    auto dm = ref::from_gb(m);
    for (auto method : kMethods) {
      d.mxm = method;
      gb::Matrix<double> c = random_matrix(10, 10, 0.2, seed + 3);
      auto dc = ref::from_gb(c);
      gb::Plus acc;
      gb::mxm(c, m, acc, gb::plus_times<double>(), a, b, d);
      ref::mxm(dc, &dm, &acc, gb::plus_times<double>(), da, db, d);
      EXPECT_TRUE(ref::equal(dc, c))
          << desc_name(d) << " method=" << static_cast<int>(method);
    }
  }
}

TEST_P(MxmSweep, SemiringVariety) {
  std::uint64_t seed = 3500 + GetParam() * 103;
  auto a = random_matrix(9, 9, 0.4, seed);
  auto b = random_matrix(9, 9, 0.4, seed + 1);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);

  auto run = [&](auto sr, const char* name) {
    ref::DenseMat<double> expect(9, 9);
    ref::mxm(expect, static_cast<const ref::DenseMat<bool>*>(nullptr),
             static_cast<const gb::Plus*>(nullptr), sr, da, db,
             gb::desc_default);
    for (auto method : kMethods) {
      gb::Descriptor d;
      d.mxm = method;
      gb::Matrix<double> c(9, 9);
      gb::mxm(c, gb::no_mask, gb::no_accum, sr, a, b, d);
      EXPECT_TRUE(ref::equal(expect, c))
          << name << " method=" << static_cast<int>(method);
    }
  };
  run(gb::min_plus<double>(), "min_plus");
  run(gb::max_times<double>(), "max_times");
  run(gb::plus_first<double>(), "plus_first");
  run(gb::plus_second<double>(), "plus_second");
  run(gb::min_max<double>(), "min_max");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxmSweep, ::testing::Range(0, 4));

TEST(Mxm, PlusPairCountsIntersections) {
  // plus_pair is the triangle-count semiring: C(i,j) = |A(i,:) ∩ B(:,j)|.
  gb::Matrix<double> a(3, 3);
  a.set_element(0, 0, 5.0);
  a.set_element(0, 1, 6.0);
  a.set_element(0, 2, 7.0);
  gb::Matrix<double> b(3, 3);
  b.set_element(0, 0, 9.0);
  b.set_element(1, 0, 9.0);
  gb::Matrix<std::int64_t> c(3, 3);
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_pair<std::int64_t>(), a, b);
  EXPECT_EQ(c.extract_element(0, 0).value(), 2);
}

TEST(Mxm, MaskedDotVisitsOnlyMaskEntries) {
  auto a = random_matrix(30, 30, 0.3, 55);
  auto b = random_matrix(30, 30, 0.3, 56);
  gb::Matrix<bool> m(30, 30);
  m.set_element(4, 7, true);
  m.set_element(21, 2, true);

  gb::Descriptor d = gb::desc_s;
  d.mxm = MxmMethod::dot;
  gb::Matrix<double> c(30, 30);
  gb::mxm(c, m, gb::no_accum, gb::plus_times<double>(), a, b, d);

  // Result pattern is a subset of the mask's.
  std::vector<Index> r, cc;
  std::vector<double> v;
  c.extract_tuples(r, cc, v);
  for (std::size_t k = 0; k < r.size(); ++k) {
    EXPECT_TRUE((r[k] == 4 && cc[k] == 7) || (r[k] == 21 && cc[k] == 2));
  }
  // And matches Gustavson under the same mask.
  d.mxm = MxmMethod::gustavson;
  gb::Matrix<double> c2(30, 30);
  gb::mxm(c2, m, gb::no_accum, gb::plus_times<double>(), a, b, d);
  EXPECT_TRUE(lagraph::isequal(c, c2));
}

TEST(Mxm, AutoPrefersDotForSparseMask) {
  auto a = random_matrix(40, 40, 0.2, 57);
  auto b = random_matrix(40, 40, 0.2, 58);
  gb::Matrix<bool> m(40, 40);
  m.set_element(0, 0, true);
  gb::Matrix<double> c(40, 40);
  auto used = gb::mxm(c, m, gb::no_accum, gb::plus_times<double>(), a, b,
                      gb::desc_s);
  EXPECT_EQ(used, MxmMethod::dot);

  gb::Matrix<double> c2(40, 40);
  auto used2 = gb::mxm(c2, gb::no_mask, gb::no_accum, gb::plus_times<double>(),
                       a, b);
  EXPECT_EQ(used2, MxmMethod::gustavson);
}

TEST(Mxm, RectangularShapes) {
  auto a = random_matrix(4, 7, 0.5, 60);
  auto b = random_matrix(7, 5, 0.5, 61);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);
  ref::DenseMat<double> expect(4, 5);
  ref::mxm(expect, static_cast<const ref::DenseMat<bool>*>(nullptr),
           static_cast<const gb::Plus*>(nullptr), gb::plus_times<double>(), da,
           db, gb::desc_default);
  for (auto method : kMethods) {
    gb::Descriptor d;
    d.mxm = method;
    gb::Matrix<double> c(4, 5);
    gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, b, d);
    EXPECT_TRUE(ref::equal(expect, c));
  }
  gb::Matrix<double> bad(5, 5);
  EXPECT_THROW(gb::mxm(bad, gb::no_mask, gb::no_accum,
                       gb::plus_times<double>(), a, b),
               gb::Error);
}

TEST(Mxm, KroneckerMatchesMimic) {
  auto a = random_matrix(3, 4, 0.5, 70);
  auto b = random_matrix(2, 5, 0.5, 71);
  auto da = ref::from_gb(a);
  auto db = ref::from_gb(b);
  gb::Matrix<double> c(6, 20);
  gb::kronecker(c, gb::no_mask, gb::no_accum, gb::Times{}, a, b);
  ref::DenseMat<double> dc(6, 20);
  ref::kronecker(dc, static_cast<const ref::DenseMat<bool>*>(nullptr),
                 static_cast<const gb::Plus*>(nullptr), gb::Times{}, da, db,
                 gb::desc_default);
  EXPECT_TRUE(ref::equal(dc, c));
}
