// mxv / vxm: push and pull must agree with each other and with the dense
// mimic across semirings, masks, and transposes; the direction optimiser
// must pick by density.
#include <gtest/gtest.h>

#include "lagraph/util/check.hpp"
#include "test_common.hpp"

using namespace testutil;
using gb::Index;
using gb::MxvMethod;

class MxvSweep : public ::testing::TestWithParam<int> {};

TEST_P(MxvSweep, PushPullMimicAgreeUnmasked) {
  std::uint64_t seed = 2500 + GetParam() * 79;
  auto a = random_matrix(20, 20, 0.3, seed);
  auto u = random_vector(20, 0.4, seed + 1);
  auto da = ref::from_gb(a);
  auto du = ref::from_gb(u);

  for (bool ta : {false, true}) {
    gb::Descriptor d;
    d.transpose_a = ta;
    ref::DenseVec<double> expect(20);
    ref::mxv(expect, static_cast<const ref::DenseVec<bool>*>(nullptr),
             static_cast<const gb::Plus*>(nullptr), gb::plus_times<double>(),
             da, du, d);

    for (auto method : {MxvMethod::push, MxvMethod::pull}) {
      d.mxv = method;
      gb::Vector<double> w(20);
      auto used = gb::mxv(w, gb::no_mask, gb::no_accum,
                          gb::plus_times<double>(), a, u, d);
      EXPECT_EQ(used, method);
      EXPECT_TRUE(ref::equal(expect, w))
          << "method=" << static_cast<int>(method) << " ta=" << ta;
    }
  }
}

TEST_P(MxvSweep, MaskedVariantsMatchMimic) {
  std::uint64_t seed = 2700 + GetParam() * 83;
  auto a = random_matrix(16, 16, 0.35, seed);
  auto u = random_vector(16, 0.5, seed + 1);
  auto da = ref::from_gb(a);
  auto du = ref::from_gb(u);

  for (auto d : mask_descriptor_sweep()) {
    auto m = random_vector(16, 0.5, seed + 2);
    auto dm = ref::from_gb(m);
    for (auto method : {MxvMethod::push, MxvMethod::pull}) {
      d.mxv = method;
      gb::Vector<double> w = random_vector(16, 0.3, seed + 3);
      auto dw = ref::from_gb(w);
      gb::Plus acc;
      gb::mxv(w, m, acc, gb::min_plus<double>(), a, u, d);
      ref::mxv(dw, &dm, &acc, gb::min_plus<double>(), da, du, d);
      EXPECT_TRUE(ref::equal(dw, w))
          << desc_name(d) << " method=" << static_cast<int>(method);
    }
  }
}

TEST_P(MxvSweep, VxmMatchesMimicWithNoncommutativeMul) {
  // first/second are order-sensitive; vxm must flip operands correctly.
  std::uint64_t seed = 2900 + GetParam() * 89;
  auto a = random_matrix(14, 14, 0.35, seed);
  auto u = random_vector(14, 0.5, seed + 1);
  auto da = ref::from_gb(a);
  auto du = ref::from_gb(u);

  for (auto method : {MxvMethod::push, MxvMethod::pull}) {
    gb::Descriptor d;
    d.mxv = method;
    gb::Vector<double> w(14);
    gb::vxm(w, gb::no_mask, gb::no_accum, gb::min_first<double>(), u, a, d);
    ref::DenseVec<double> dw(14);
    ref::vxm(dw, static_cast<const ref::DenseVec<bool>*>(nullptr),
             static_cast<const gb::Plus*>(nullptr), gb::min_first<double>(),
             du, da);
    EXPECT_TRUE(ref::equal(dw, w)) << "method=" << static_cast<int>(method);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxvSweep, ::testing::Range(0, 5));

TEST(Mxv, AutoSelectsByDensity) {
  auto a = random_matrix(100, 100, 0.1, 11);
  gb::Descriptor d;  // auto, threshold 1/32

  gb::Vector<double> sparse_u(100);
  sparse_u.set_element(0, 1.0);
  gb::Vector<double> w(100);
  EXPECT_EQ(gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a,
                    sparse_u, d),
            MxvMethod::push);

  auto dense_u = gb::Vector<double>::full(100, 1.0);
  EXPECT_EQ(gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a,
                    dense_u, d),
            MxvMethod::pull);
}

TEST(Mxv, TerminalEarlyExitSameResult) {
  // lor_land over a row where the first hit already decides the output.
  auto a = random_matrix(50, 50, 0.3, 13);
  auto u = random_vector(50, 0.8, 14);
  gb::Matrix<bool> ab(50, 50);
  gb::apply(ab, gb::no_mask, gb::no_accum,
            [](double x) { return x != 0.0; }, a);
  gb::Vector<bool> ub(50);
  gb::apply(ub, gb::no_mask, gb::no_accum,
            [](double x) { return x != 0.0; }, u);

  gb::Descriptor push_d, pull_d;
  push_d.mxv = MxvMethod::push;
  pull_d.mxv = MxvMethod::pull;
  gb::Vector<bool> w1(50), w2(50);
  gb::mxv(w1, gb::no_mask, gb::no_accum, gb::lor_land(), ab, ub, push_d);
  gb::mxv(w2, gb::no_mask, gb::no_accum, gb::lor_land(), ab, ub, pull_d);
  EXPECT_TRUE(lagraph::isequal(w1, w2));
}

TEST(Mxv, AnySemiringPicksSomeValue) {
  gb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 5.0);
  a.set_element(0, 2, 7.0);
  gb::Vector<double> u(3);
  u.set_element(1, 1.0);
  u.set_element(2, 1.0);
  gb::Vector<double> w(3);
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::any_first<double>(), a, u);
  ASSERT_EQ(w.nvals(), 1u);
  double v = w.extract_element(0).value();
  EXPECT_TRUE(v == 5.0 || v == 7.0);
}

TEST(Mxv, HypersparseHugeDimensionPush) {
  // The push path must work on enormous dimensions via the hash accumulator.
  const Index huge = Index{1} << 40;
  gb::Matrix<double> a(huge, huge, gb::Layout::by_col, gb::HyperMode::always);
  a.set_element(3, 1000000000000ULL, 2.0);
  a.set_element(huge - 1, 1000000000000ULL, 3.0);
  gb::Vector<double> u(huge);
  u.set_element(1000000000000ULL, 10.0);
  gb::Vector<double> w(huge);
  gb::Descriptor d;
  d.mxv = MxvMethod::push;
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u, d);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.extract_element(3).value(), 20.0);
  EXPECT_EQ(w.extract_element(huge - 1).value(), 30.0);
}

TEST(Mxv, DimensionChecks) {
  gb::Matrix<double> a(3, 4);
  gb::Vector<double> u(3), w(3);
  EXPECT_THROW(
      gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u),
      gb::Error);
}
