// Non-blocking mode (§II-A): zombies, pending tuples, and the single
// sort-and-merge materialisation step.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

using gb::Index;
using gb::Matrix;
using gb::Vector;

TEST(NonBlocking, SetElementDefersWork) {
  Matrix<double> a(100, 100);
  for (Index i = 0; i < 50; ++i) a.set_element(i, i, 1.0);
  // Before any read the tuples are pending.
  EXPECT_TRUE(a.has_pending_work());
  EXPECT_EQ(a.pending_count(), 50u);
  // Any read materialises (the as-if rule).
  EXPECT_EQ(a.nvals(), 50u);
  EXPECT_FALSE(a.has_pending_work());
  EXPECT_EQ(a.pending_count(), 0u);
}

TEST(NonBlocking, RemoveElementCreatesZombie) {
  Matrix<double> a(10, 10);
  a.set_element(1, 1, 1.0);
  a.set_element(2, 2, 2.0);
  a.wait();
  a.remove_element(1, 1);
  EXPECT_EQ(a.zombie_count(), 1u);
  EXPECT_TRUE(a.has_pending_work());
  EXPECT_EQ(a.nvals(), 1u);  // read kills the zombie
  EXPECT_EQ(a.zombie_count(), 0u);
}

TEST(NonBlocking, PendingOverwritesStored) {
  Matrix<double> a(4, 4);
  a.set_element(0, 0, 1.0);
  a.wait();
  a.set_element(0, 0, 9.0);  // pending overwrite of a stored entry
  a.set_element(0, 0, 11.0);  // last write wins among pending too
  EXPECT_EQ(a.extract_element(0, 0).value(), 11.0);
  EXPECT_EQ(a.nvals(), 1u);
}

TEST(NonBlocking, RemoveCancelsPendingInsert) {
  Matrix<double> a(4, 4);
  a.set_element(1, 2, 5.0);  // pending
  a.remove_element(1, 2);    // must cancel it
  EXPECT_EQ(a.nvals(), 0u);
}

TEST(NonBlocking, InterleavedSetRemoveSequence) {
  Matrix<int> a(8, 8);
  for (Index i = 0; i < 8; ++i) a.set_element(i, i, static_cast<int>(i));
  a.wait();
  a.remove_element(3, 3);
  a.set_element(3, 3, 99);  // resurrect after zombie
  a.remove_element(5, 5);
  a.set_element(7, 0, 70);
  EXPECT_EQ(a.nvals(), 8u);  // 8 - 1 (5,5) + 1 (7,0)
  EXPECT_EQ(a.extract_element(3, 3).value(), 99);
  EXPECT_FALSE(a.extract_element(5, 5).has_value());
  EXPECT_EQ(a.extract_element(7, 0).value(), 70);
}

TEST(NonBlocking, SetElementLoopEqualsBuild) {
  // §II-A's claim, checked for *equality of result* here (bench C2 checks
  // the speed claim).
  const Index n = 200;
  Matrix<double> via_set(n, n);
  Matrix<double> via_build(n, n);
  std::vector<Index> r, c;
  std::vector<double> v;
  for (Index k = 0; k < 1000; ++k) {
    Index i = (k * 37) % n, j = (k * 61) % n;
    double x = static_cast<double>(k);
    via_set.set_element(i, j, x);
    r.push_back(i);
    c.push_back(j);
    v.push_back(x);
  }
  via_build.build(r, c, v, gb::Second{});  // last wins, like setElement
  std::vector<Index> r1, c1, r2, c2;
  std::vector<double> v1, v2;
  via_set.extract_tuples(r1, c1, v1);
  via_build.extract_tuples(r2, c2, v2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(v1, v2);
}

TEST(NonBlocking, VectorPendingAndZombies) {
  Vector<double> v(50);
  for (Index i = 0; i < 25; ++i) v.set_element(i, 1.0);
  EXPECT_TRUE(v.has_pending_work());
  EXPECT_EQ(v.nvals(), 25u);
  v.remove_element(10);
  EXPECT_TRUE(v.has_pending_work());
  EXPECT_EQ(v.nvals(), 24u);
  v.set_element(10, 3.0);
  EXPECT_EQ(v.extract_element(10).value(), 3.0);
}

TEST(NonBlocking, OperationsSeeMaterialisedState) {
  // An operation must observe pending work as if already applied.
  Matrix<double> a(5, 5);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  Vector<double> u(5);
  u.set_element(0, 1.0);
  Vector<double> w(5);
  gb::vxm(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), u, a);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extract_element(1).value(), 1.0);

  a.remove_element(0, 1);
  gb::vxm(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), u, a);
  EXPECT_EQ(w.nvals(), 0u);
}
