// Operator, monoid, and semiring semantics.
#include <gtest/gtest.h>

#include <limits>

#include "graphblas/graphblas.hpp"

using namespace gb;

TEST(Ops, BinaryBasics) {
  EXPECT_EQ(First{}(3, 7), 3);
  EXPECT_EQ(Second{}(3, 7), 7);
  EXPECT_EQ(Pair{}(3.5, 7.5), 1);
  EXPECT_EQ(Plus{}(3, 7), 10);
  EXPECT_EQ(Minus{}(3, 7), -4);
  EXPECT_EQ(Rminus{}(3, 7), 4);
  EXPECT_EQ(Times{}(3, 7), 21);
  EXPECT_EQ(Div{}(8.0, 2.0), 4.0);
  EXPECT_EQ(Rdiv{}(2.0, 8.0), 4.0);
  EXPECT_EQ(Min{}(3, 7), 3);
  EXPECT_EQ(Max{}(3, 7), 7);
}

TEST(Ops, LogicalCoercion) {
  EXPECT_TRUE(Lor{}(0.0, 2.5));
  EXPECT_FALSE(Lor{}(0.0, 0.0));
  EXPECT_TRUE(Land{}(1, -1));
  EXPECT_FALSE(Land{}(1, 0));
  EXPECT_TRUE(Lxor{}(1, 0));
  EXPECT_FALSE(Lxor{}(2, 3));  // both truthy
  EXPECT_TRUE(Lxnor{}(2, 3));
}

TEST(Ops, Comparisons) {
  EXPECT_TRUE(Eq{}(4, 4));
  EXPECT_TRUE(Ne{}(4, 5));
  EXPECT_TRUE(Gt{}(5, 4));
  EXPECT_TRUE(Lt{}(4, 5));
  EXPECT_TRUE(Ge{}(4, 4));
  EXPECT_TRUE(Le{}(4, 4));
  EXPECT_EQ(Iseq{}(4, 4), 1);
  EXPECT_EQ(Isgt{}(3, 4), 0);
}

TEST(Ops, Unary) {
  EXPECT_EQ(Identity{}(42), 42);
  EXPECT_EQ(Ainv{}(42), -42);
  EXPECT_EQ(Minv{}(4.0), 0.25);
  EXPECT_TRUE(Lnot{}(0));
  EXPECT_FALSE(Lnot{}(3));
  EXPECT_EQ(Abs{}(-3), 3);
  EXPECT_EQ(Abs{}(3u), 3u);
  EXPECT_EQ(One{}(-99), 1);
  EXPECT_EQ((BindSecond<Plus, int>{{}, 10}(5)), 15);
  EXPECT_EQ((BindFirst<Minus, int>{{}, 10}(4)), 6);
}

TEST(Ops, SelectPredicates) {
  // (value, row, col, thunk)
  EXPECT_TRUE(SelTril{}(1.0, Index{3}, Index{2}, std::int64_t{0}));
  EXPECT_FALSE(SelTril{}(1.0, Index{2}, Index{3}, std::int64_t{0}));
  EXPECT_TRUE(SelTril{}(1.0, Index{2}, Index{3}, std::int64_t{1}));
  EXPECT_TRUE(SelTriu{}(1.0, Index{2}, Index{3}, std::int64_t{0}));
  EXPECT_TRUE(SelDiag{}(1.0, Index{2}, Index{2}, std::int64_t{0}));
  EXPECT_TRUE(SelOffdiag{}(1.0, Index{2}, Index{3}, std::int64_t{0}));
  EXPECT_TRUE(SelValueGt{}(5, Index{0}, Index{0}, 4));
  EXPECT_FALSE(SelValueLt{}(5, Index{0}, Index{0}, 4));
  EXPECT_TRUE(SelValueNe{}(5, Index{0}, Index{0}, 4));
  EXPECT_TRUE(SelValueEq{}(5, Index{0}, Index{0}, 5));
  EXPECT_EQ(RowIndex{}(9.0, Index{7}, Index{2}, std::int64_t{1}), 8);
  EXPECT_EQ(ColIndex{}(9.0, Index{7}, Index{2}, std::int64_t{0}), 2);
}

TEST(Monoids, IdentitiesAndTerminals) {
  auto p = plus_monoid<int>();
  EXPECT_EQ(p.identity, 0);
  EXPECT_FALSE(p.terminal.has_value());

  auto t = times_monoid<int>();
  EXPECT_EQ(t.identity, 1);
  EXPECT_TRUE(t.is_terminal(0));

  auto mn = min_monoid<double>();
  EXPECT_EQ(mn.identity, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(mn.is_terminal(-std::numeric_limits<double>::infinity()));

  auto mni = min_monoid<std::uint32_t>();
  EXPECT_EQ(mni.identity, std::numeric_limits<std::uint32_t>::max());
  EXPECT_TRUE(mni.is_terminal(0));

  auto mx = max_monoid<std::int16_t>();
  EXPECT_EQ(mx.identity, std::numeric_limits<std::int16_t>::lowest());
  EXPECT_TRUE(mx.is_terminal(std::numeric_limits<std::int16_t>::max()));

  EXPECT_TRUE(lor_monoid().is_terminal(true));
  EXPECT_FALSE(lor_monoid().is_terminal(false));
  EXPECT_TRUE(land_monoid().is_terminal(false));
  EXPECT_FALSE(lxor_monoid().terminal.has_value());
}

TEST(Monoids, AnyIsAlwaysTerminal) {
  static_assert(always_terminal<Monoid<int, Any>>);
  static_assert(!always_terminal<Monoid<int, Plus>>);
  auto any = any_monoid<int>();
  EXPECT_EQ(any(7, 9), 7);  // picks an operand (the first here)
}

TEST(Semirings, FactoriesCompose) {
  auto pt = plus_times<double>();
  EXPECT_EQ(pt.add(3.0, 4.0), 7.0);
  EXPECT_EQ(pt.mul(3.0, 4.0), 12.0);

  auto mp = min_plus<double>();
  EXPECT_EQ(mp.add(3.0, 4.0), 3.0);
  EXPECT_EQ(mp.mul(3.0, 4.0), 7.0);
  EXPECT_EQ(mp.add.identity, std::numeric_limits<double>::infinity());

  auto ll = lor_land();
  EXPECT_TRUE(ll.add(false, true));
  EXPECT_FALSE(ll.mul(true, false));

  auto pp = plus_pair<std::int64_t>();
  EXPECT_EQ(pp.mul(123.0, 456.0), 1);

  auto mf = min_first<std::uint64_t>();
  EXPECT_EQ(mf.mul(std::uint64_t{5}, 3.0), std::uint64_t{5});

  auto mxs = max_second<std::uint64_t>();
  EXPECT_EQ(mxs.mul(1.0, std::uint64_t{9}), std::uint64_t{9});
}

TEST(Types, InfoStrings) {
  EXPECT_STREQ(to_string(Info::success), "success");
  EXPECT_STREQ(to_string(Info::dimension_mismatch), "dimension_mismatch");
  Error e(Info::invalid_index, "probe");
  EXPECT_EQ(e.info(), Info::invalid_index);
  EXPECT_NE(std::string(e.what()).find("probe"), std::string::npos);
}

TEST(Types, CheckHelpersThrow) {
  EXPECT_NO_THROW(check_dims(true, "ok"));
  EXPECT_THROW(check_dims(false, "bad"), Error);
  EXPECT_THROW(check_index(false, "bad"), Error);
  EXPECT_THROW(check_value(false, "bad"), Error);
}
