// PageRank vs the textbook power iteration, including dangling vertices.
#include <gtest/gtest.h>

#include <numeric>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

void expect_pr_matches(const Graph& g, double tol = 1e-6) {
  auto res = pagerank(g, 0.85, 1e-12, 200);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto want = ref::pagerank(sg, 0.85, 200, 1e-12);
  auto got = to_dense_std(res.rank, 0.0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    EXPECT_NEAR(got[v], want[v], tol) << "vertex " << v;
  }
}

}  // namespace

TEST(PageRank, SymmetricStar) {
  Graph g(star_graph(10), Kind::undirected);
  expect_pr_matches(g);
  // The hub must dominate.
  auto res = pagerank(g);
  auto r = to_dense_std(res.rank, 0.0);
  for (Index v = 1; v < 10; ++v) EXPECT_GT(r[0], r[v]);
}

TEST(PageRank, DirectedWithDanglingVertex) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(3, 2, 1.0);
  // vertex 2 is dangling (no out-edges).
  Graph g(std::move(a), Kind::directed);
  expect_pr_matches(g);
}

TEST(PageRank, RmatGraph) {
  Graph g(rmat(8, 8, 21), Kind::undirected);
  expect_pr_matches(g, 1e-5);
}

TEST(PageRank, ErdosRenyiDirected) {
  Graph g(erdos_renyi(100, 400, 22, /*symmetric=*/false), Kind::directed);
  expect_pr_matches(g, 1e-5);
}

TEST(PageRank, SumsToOne) {
  Graph g(rmat(7, 6, 23), Kind::undirected);
  auto res = pagerank(g);
  double total = gb::reduce_scalar(gb::plus_monoid<double>(), res.rank);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, ConvergesAndReportsIterations) {
  Graph g(cycle_graph(10), Kind::undirected);
  auto res = pagerank(g, 0.85, 1e-10, 100);
  EXPECT_GT(res.iterations, 0);
  EXPECT_LT(res.iterations, 100);  // regular graph converges immediately
  // On a k-regular graph PageRank is uniform.
  auto r = to_dense_std(res.rank, 0.0);
  for (double v : r) EXPECT_NEAR(v, 0.1, 1e-9);
}

TEST(PageRank, WeightedGraphUsesDegreesNotWeights) {
  // PageRank is defined on the out-degree split; stored edge weights must
  // not leak into the iteration (a weighted graph would diverge otherwise).
  Graph g(randomize_weights(erdos_renyi(80, 300, 31), 1.0, 9.0, 32),
          Kind::undirected);
  expect_pr_matches(g, 1e-5);
  auto res = pagerank(g);
  double total = gb::reduce_scalar(gb::plus_monoid<double>(), res.rank);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, RespectsIterationCap) {
  Graph g(rmat(7, 6, 29), Kind::undirected);
  auto res = pagerank(g, 0.85, 1e-300, 5);  // impossible tolerance
  EXPECT_EQ(res.iterations, 5);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.stop, lagraph::StopReason::max_iters);
}
