// The OpenMP parallel kernel paths (§II-A: "an OpenMP implementation is in
// progress" for SuiteSparse; here it exists). Determinism contract: the
// chunked parallel kernels must produce BIT-IDENTICAL results to the serial
// pass — per-chunk buffers concatenated in order, no shared accumulators.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"

using gb::Index;

namespace {

/// RAII thread-count override so a failing assertion can't leak the
/// setting into other tests.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) {
#ifdef _OPENMP
    before_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(before_);
#endif
  }

 private:
  int before_ = 1;
};

}  // namespace

TEST(Parallel, PullMxvBitIdenticalAcrossThreadCounts) {
  // Large enough to clear the parallel kernel's row threshold.
  auto a = lagraph::rmat(12, 8, 3);
  auto u = gb::Vector<double>::full(a.nrows(), 1.25);
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::pull;

  gb::Vector<double> serial(a.nrows());
  {
    ThreadGuard guard(1);
    gb::mxv(serial, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u,
            d);
  }
  for (int threads : {2, 4, 7}) {
    ThreadGuard guard(threads);
    gb::Vector<double> par(a.nrows());
    gb::mxv(par, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u, d);
    EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
  }
}

TEST(Parallel, GustavsonMxmBitIdenticalAcrossThreadCounts) {
  auto a = lagraph::rmat(9, 8, 5);
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;

  gb::Matrix<double> serial(a.nrows(), a.ncols());
  {
    ThreadGuard guard(1);
    gb::mxm(serial, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a,
            d);
  }
  for (int threads : {2, 4, 7}) {
    ThreadGuard guard(threads);
    gb::Matrix<double> par(a.nrows(), a.ncols());
    gb::mxm(par, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a, d);
    EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
  }
}

TEST(Parallel, MaskedGustavsonParallelIsCorrect) {
  auto a = lagraph::rmat(9, 8, 6);
  gb::Matrix<bool> mask(a.nrows(), a.ncols());
  gb::apply(mask, gb::no_mask, gb::no_accum, [](double) { return true; },
            lagraph::rmat(9, 2, 7));
  gb::Descriptor d = gb::desc_s;
  d.mxm = gb::MxmMethod::gustavson;

  gb::Matrix<std::int64_t> serial(a.nrows(), a.ncols());
  {
    ThreadGuard guard(1);
    gb::mxm(serial, mask, gb::no_accum, gb::plus_pair<std::int64_t>(), a, a,
            d);
  }
  ThreadGuard guard(4);
  gb::Matrix<std::int64_t> par(a.nrows(), a.ncols());
  gb::mxm(par, mask, gb::no_accum, gb::plus_pair<std::int64_t>(), a, a, d);
  EXPECT_TRUE(lagraph::isequal(serial, par));
}

TEST(Parallel, AlgorithmsUnchangedUnderParallelKernels) {
  auto adj = lagraph::rmat(10, 8, 8);
  lagraph::Graph g(adj.dup(), lagraph::Kind::undirected);
  lagraph::Graph g2(adj.dup(), lagraph::Kind::undirected);

  std::uint64_t tri_serial, tri_par;
  gb::Vector<std::uint64_t> cc_serial, cc_par;
  {
    ThreadGuard guard(1);
    tri_serial = lagraph::triangle_count(g);
    cc_serial = lagraph::connected_components(g);
  }
  {
    ThreadGuard guard(4);
    tri_par = lagraph::triangle_count(g2);
    cc_par = lagraph::connected_components(g2);
  }
  EXPECT_EQ(tri_serial, tri_par);
  EXPECT_TRUE(lagraph::isequal(cc_serial, cc_par));
}

TEST(Parallel, ChunkHelperCoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  gb::platform::parallel_for_chunks(
      1000, 7, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
  for (int h : hits) EXPECT_EQ(h, 1);

  // Degenerate shapes.
  gb::platform::parallel_for_chunks(0, 4, [&](std::size_t, std::size_t,
                                              std::size_t) { FAIL(); });
  int calls = 0;
  gb::platform::parallel_for_chunks(
      3, 10, [&](std::size_t, std::size_t lo, std::size_t hi) {
        calls += static_cast<int>(hi - lo);
      });
  EXPECT_EQ(calls, 3);
}

TEST(Parallel, ExclusiveScanComputesPointerArray) {
  std::vector<std::int64_t> v{3, 0, 5, 2};
  EXPECT_EQ(gb::platform::exclusive_scan(v), 10);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 3, 3, 8}));

  std::vector<std::uint32_t> empty;
  EXPECT_EQ(gb::platform::exclusive_scan(empty), 0u);
}

// --- cost-balanced partitioner ------------------------------------------

TEST(Partitioner, BalancedCutCoversRangeMonotonically) {
  // Prefix of costs {5, 1, 1, 1, 20, 1, 1, 1} (total 31).
  std::vector<std::uint64_t> prefix{0, 5, 6, 7, 8, 28, 29, 30, 31};
  const std::span<const std::uint64_t> p(prefix.data(), prefix.size());
  for (std::size_t nchunks : {1u, 2u, 3u, 5u, 8u}) {
    std::size_t prev = gb::platform::balanced_cut(p, nchunks, 0);
    EXPECT_EQ(prev, 0u);
    for (std::size_t c = 1; c <= nchunks; ++c) {
      std::size_t cut = gb::platform::balanced_cut(p, nchunks, c);
      EXPECT_LE(prev, cut) << "nchunks=" << nchunks << " c=" << c;
      prev = cut;
    }
    EXPECT_EQ(prev, prefix.size() - 1) << "nchunks=" << nchunks;
  }
}

TEST(Partitioner, DominantItemIsIsolated) {
  // One item carries ~all the cost; with 4 chunks it must sit alone in its
  // chunk rather than dragging neighbours along (the equal-row failure).
  std::vector<std::uint64_t> costs{1, 1, 1, 1000, 1, 1, 1, 1};
  std::vector<std::uint64_t> prefix(costs.size() + 1, 0);
  for (std::size_t k = 0; k < costs.size(); ++k) prefix[k + 1] = prefix[k] + costs[k];
  const std::span<const std::uint64_t> p(prefix.data(), prefix.size());
  // The chunk containing item 3 must contain only item 3.
  std::size_t lo = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    std::size_t hi = gb::platform::balanced_cut(p, 4, c + 1);
    if (lo <= 3 && 3 < hi) {
      EXPECT_EQ(hi - lo, 1u) << "dominant item shares a chunk [" << lo << ","
                             << hi << ")";
    }
    lo = hi;
  }
}

TEST(Partitioner, AllZeroCostsFallBackToEqualSplit) {
  std::vector<std::uint64_t> prefix(101, 0);  // 100 items, all cost 0
  const std::span<const std::uint64_t> p(prefix.data(), prefix.size());
  std::size_t prev = 0;
  for (std::size_t c = 1; c <= 4; ++c) {
    std::size_t cut = gb::platform::balanced_cut(p, 4, c);
    EXPECT_EQ(cut, 100 * c / 4);
    EXPECT_LT(prev, cut);
    prev = cut;
  }
}

TEST(Partitioner, FewerItemsThanChunksStillCoversAll) {
  std::vector<std::uint64_t> prefix{0, 7, 9, 10};  // 3 items
  const std::span<const std::uint64_t> p(prefix.data(), prefix.size());
  std::vector<int> hits(3, 0);
  gb::platform::parallel_balanced_chunks_n(
      p, std::size_t{8}, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) ++hits[k];
      });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Partitioner, ChunkCountRespectsForcedOverrideAndClamps) {
  using gb::platform::chunk_count;
  EXPECT_EQ(chunk_count(0, 1000000), 0u);
  EXPECT_EQ(chunk_count(100, 0), 1u);  // below cost grain
  {
    gb::platform::ForcedChunks guard(5);
    EXPECT_EQ(chunk_count(100, 0), 5u);
    EXPECT_EQ(chunk_count(3, 1000000), 3u);  // clamped to item count
  }
  EXPECT_EQ(chunk_count(100, 0), 1u);  // guard restored
}

TEST(Partitioner, BalancedChunksPropagateExceptions) {
  std::vector<std::uint64_t> prefix{0, 1, 2, 3, 4};
  const std::span<const std::uint64_t> p(prefix.data(), prefix.size());
  EXPECT_THROW(gb::platform::parallel_balanced_chunks_n(
                   p, std::size_t{4},
                   [&](std::size_t c, std::size_t, std::size_t) {
                     if (c == 2) throw std::runtime_error("chunk 2");
                   }),
               std::runtime_error);
}

// --- determinism suite: every parallel kernel, 1 / 2 / max threads -------

namespace {

/// Run `body` serially for the reference, then at several thread counts
/// with a forced multi-chunk split (so the chunked code path runs even on
/// a single-core machine), asserting `check` each time.
template <class Body, class Check>
void determinism_sweep(Body&& body, Check&& check) {
  {
    ThreadGuard guard(1);
    body();  // reference fill
  }
  for (int threads : {1, 2, 4}) {
    ThreadGuard guard(threads);
    gb::platform::ForcedChunks force(3);
    check(threads);
  }
}

}  // namespace

TEST(Determinism, DotMxmMaskedAndComplemented) {
  auto a = lagraph::rmat(8, 8, 11);
  gb::Matrix<bool> mask(a.nrows(), a.ncols());
  gb::apply(mask, gb::no_mask, gb::no_accum, [](double) { return true; },
            lagraph::rmat(8, 2, 12));
  for (bool complement : {false, true}) {
    gb::Descriptor d = gb::desc_s;
    d.mxm = gb::MxmMethod::dot;
    d.mask_complement = complement;
    gb::Matrix<double> serial(a.nrows(), a.ncols());
    determinism_sweep(
        [&] {
          gb::mxm(serial, mask, gb::no_accum, gb::plus_times<double>(), a, a,
                  d);
        },
        [&](int threads) {
          gb::Matrix<double> par(a.nrows(), a.ncols());
          gb::mxm(par, mask, gb::no_accum, gb::plus_times<double>(), a, a, d);
          EXPECT_TRUE(lagraph::isequal(serial, par))
              << threads << " threads, complement=" << complement;
        });
  }
}

TEST(Determinism, HeapMxm) {
  auto a = lagraph::rmat(8, 8, 13);
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::heap;
  gb::Matrix<double> serial(a.nrows(), a.ncols());
  determinism_sweep(
      [&] {
        gb::mxm(serial, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a,
                a, d);
      },
      [&](int threads) {
        gb::Matrix<double> par(a.nrows(), a.ncols());
        gb::mxm(par, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a,
                d);
        EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
      });
}

TEST(Determinism, MxmMethodsAgreeBitwise) {
  // The three families must agree bitwise on floats — the heap's ord
  // tie-break and the dot's walk reproduce Gustavson's k-ascending
  // combination order.
  auto a = lagraph::rmat(8, 8, 14);
  gb::Matrix<double> ref(a.nrows(), a.ncols());
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;
  gb::mxm(ref, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a, d);
  gb::platform::ForcedChunks force(3);
  for (auto m : {gb::MxmMethod::dot, gb::MxmMethod::heap}) {
    d.mxm = m;
    gb::Matrix<double> c(a.nrows(), a.ncols());
    gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a, d);
    EXPECT_TRUE(lagraph::isequal(ref, c));
  }
}

TEST(Determinism, EwiseAddAndMult) {
  auto a = lagraph::rmat(8, 6, 15);
  auto b = lagraph::rmat(8, 6, 16);
  gb::Matrix<double> sum_serial(a.nrows(), a.ncols());
  gb::Matrix<double> prod_serial(a.nrows(), a.ncols());
  determinism_sweep(
      [&] {
        gb::ewise_add(sum_serial, gb::no_mask, gb::no_accum, gb::Plus{}, a, b);
        gb::ewise_mult(prod_serial, gb::no_mask, gb::no_accum, gb::Times{}, a,
                       b);
      },
      [&](int threads) {
        gb::Matrix<double> sum(a.nrows(), a.ncols());
        gb::Matrix<double> prod(a.nrows(), a.ncols());
        gb::ewise_add(sum, gb::no_mask, gb::no_accum, gb::Plus{}, a, b);
        gb::ewise_mult(prod, gb::no_mask, gb::no_accum, gb::Times{}, a, b);
        EXPECT_TRUE(lagraph::isequal(sum_serial, sum)) << threads;
        EXPECT_TRUE(lagraph::isequal(prod_serial, prod)) << threads;
      });
}

TEST(Determinism, ApplyAndSelectAndReduceVector) {
  auto a = lagraph::rmat(8, 8, 17);
  gb::Matrix<double> ap_serial(a.nrows(), a.ncols());
  gb::Matrix<double> idx_serial(a.nrows(), a.ncols());
  gb::Matrix<double> sel_serial(a.nrows(), a.ncols());
  gb::Vector<double> red_serial(a.nrows());
  auto idxop = [](double v, Index i, Index j, std::int64_t t) {
    return v + static_cast<double>(i * 3 + j + static_cast<Index>(t));
  };
  determinism_sweep(
      [&] {
        gb::apply(ap_serial, gb::no_mask, gb::no_accum,
                  [](double v) { return v * 2.5; }, a);
        gb::apply_indexop(idx_serial, gb::no_mask, gb::no_accum, idxop, a,
                          std::int64_t{1});
        gb::select(sel_serial, gb::no_mask, gb::no_accum, gb::SelTril{}, a,
                   std::int64_t{-1});
        gb::reduce(red_serial, gb::no_mask, gb::no_accum,
                   gb::plus_monoid<double>(), a);
      },
      [&](int threads) {
        gb::Matrix<double> ap(a.nrows(), a.ncols());
        gb::Matrix<double> idx(a.nrows(), a.ncols());
        gb::Matrix<double> sel(a.nrows(), a.ncols());
        gb::Vector<double> red(a.nrows());
        gb::apply(ap, gb::no_mask, gb::no_accum,
                  [](double v) { return v * 2.5; }, a);
        gb::apply_indexop(idx, gb::no_mask, gb::no_accum, idxop, a,
                          std::int64_t{1});
        gb::select(sel, gb::no_mask, gb::no_accum, gb::SelTril{}, a,
                   std::int64_t{-1});
        gb::reduce(red, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(),
                   a);
        EXPECT_TRUE(lagraph::isequal(ap_serial, ap)) << threads;
        EXPECT_TRUE(lagraph::isequal(idx_serial, idx)) << threads;
        EXPECT_TRUE(lagraph::isequal(sel_serial, sel)) << threads;
        EXPECT_TRUE(lagraph::isequal(red_serial, red)) << threads;
      });
}

TEST(Determinism, ReduceScalarFixedTreeAcrossThreadCounts) {
  // nnz >> 8192 so the fixed-width chunking actually splits; the combining
  // tree depends only on nnz, so the double result is EXACTLY equal at any
  // thread count.
  auto a = lagraph::rmat(11, 8, 18);
  double serial;
  {
    ThreadGuard guard(1);
    serial = gb::reduce_scalar(gb::plus_monoid<double>(), a);
  }
  for (int threads : {2, 4}) {
    ThreadGuard guard(threads);
    double par = gb::reduce_scalar(gb::plus_monoid<double>(), a);
    EXPECT_EQ(serial, par) << threads << " threads";
  }
}

TEST(Determinism, TransposeBucketParallel) {
  auto a = lagraph::rmat(9, 8, 19);
  gb::Matrix<double> serial(a.ncols(), a.nrows());
  determinism_sweep(
      [&] {
        auto fresh = a.dup();  // fresh dual-orientation cache each run
        gb::transpose(serial, gb::no_mask, gb::no_accum, fresh);
      },
      [&](int threads) {
        auto fresh = a.dup();
        gb::Matrix<double> par(a.ncols(), a.nrows());
        gb::transpose(par, gb::no_mask, gb::no_accum, fresh);
        EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
      });
}

TEST(Determinism, KroneckerParallel) {
  auto a = lagraph::rmat(5, 4, 20);
  auto b = lagraph::rmat(4, 4, 21);
  const Index m = a.nrows() * b.nrows();
  const Index n = a.ncols() * b.ncols();
  gb::Matrix<double> serial(m, n);
  determinism_sweep(
      [&] { gb::kronecker(serial, gb::no_mask, gb::no_accum, gb::Times{}, a, b); },
      [&](int threads) {
        gb::Matrix<double> par(m, n);
        gb::kronecker(par, gb::no_mask, gb::no_accum, gb::Times{}, a, b);
        EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
      });
}

// --- auto-select heuristics ----------------------------------------------

TEST(MxmAutoSelect, MaskedDensityCompareDoesNotOverflow) {
  // m * n == 2^64 wraps Index to exactly 0, flipping the density verdict:
  // the buggy compare saw `nvals*4 < 0` and never chose the masked-dot
  // method on huge hypersparse operands. All stores are empty, so only the
  // decision is observable — and it must be `dot`.
  const Index huge = Index{1} << 32;
  gb::Matrix<double> a(huge, huge), b(huge, huge), c(huge, huge);
  gb::Matrix<bool> mask(huge, huge);
  auto method = gb::mxm(c, mask, gb::no_accum, gb::plus_times<double>(), a, b,
                        gb::desc_s);
  EXPECT_EQ(method, gb::MxmMethod::dot);
}

TEST(MxmAutoSelect, VerySparseRowsPickHeap) {
  // A diagonal A (1 entry/row) against a sparse B: flops per row ~ B's row
  // length, far under the dense-accumulator threshold — heap must win.
  const Index n = 128;
  auto a = gb::Matrix<double>::identity(n);
  auto b = gb::Matrix<double>::identity(n);
  gb::Matrix<double> c(n, n);
  auto method = gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(),
                        a, b);
  EXPECT_EQ(method, gb::MxmMethod::heap);

  // A denser operand must keep Gustavson.
  auto dense_a = lagraph::rmat(7, 8, 22);
  gb::Matrix<double> c2(dense_a.nrows(), dense_a.ncols());
  auto method2 = gb::mxm(c2, gb::no_mask, gb::no_accum,
                         gb::plus_times<double>(), dense_a, dense_a);
  EXPECT_EQ(method2, gb::MxmMethod::gustavson);
}

// --- kronecker dimension overflow ---------------------------------------

TEST(Kronecker, OutputDimensionOverflowThrows) {
  const Index big = Index{1} << 40;
  gb::Matrix<double> a(big, 2), b(big, 2), c(4, 4);
  try {
    gb::kronecker(c, gb::no_mask, gb::no_accum, gb::Times{}, a, b);
    FAIL() << "expected gb::Error";
  } catch (const gb::Error& e) {
    EXPECT_EQ(e.info(), gb::Info::index_out_of_bounds);
  }
}

TEST(Parallel, ExclusiveScanDetectsOverflow) {
  // Synthetic near-limit case: a 32-bit pointer array whose total nnz would
  // wrap. Without the check this silently corrupts every row offset; the
  // checked path throws, and the C API maps it to GrB_INDEX_OUT_OF_BOUNDS.
  constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
  std::vector<std::int32_t> wraps{kMax - 1, 1, 1};
  EXPECT_THROW(gb::platform::exclusive_scan(wraps), std::overflow_error);

  // Exactly at the limit is representable and must pass.
  std::vector<std::int32_t> fits{kMax - 1, 1};
  EXPECT_EQ(gb::platform::exclusive_scan(fits), kMax);
  EXPECT_EQ(fits, (std::vector<std::int32_t>{0, kMax - 1}));

  // Unsigned index type near 2^32.
  constexpr std::uint32_t kUMax = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> uwraps{kUMax, 1};
  EXPECT_THROW(gb::platform::exclusive_scan(uwraps), std::overflow_error);

  // Negative counts are malformed input, not a wrapped sum in disguise.
  std::vector<std::int32_t> negative{4, -1};
  EXPECT_THROW(gb::platform::exclusive_scan(negative), std::overflow_error);
}
