// The OpenMP parallel kernel paths (§II-A: "an OpenMP implementation is in
// progress" for SuiteSparse; here it exists). Determinism contract: the
// chunked parallel kernels must produce BIT-IDENTICAL results to the serial
// pass — per-chunk buffers concatenated in order, no shared accumulators.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"

using gb::Index;

namespace {

/// RAII thread-count override so a failing assertion can't leak the
/// setting into other tests.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) {
#ifdef _OPENMP
    before_ = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(before_);
#endif
  }

 private:
  int before_ = 1;
};

}  // namespace

TEST(Parallel, PullMxvBitIdenticalAcrossThreadCounts) {
  // Large enough to clear the parallel kernel's row threshold.
  auto a = lagraph::rmat(12, 8, 3);
  auto u = gb::Vector<double>::full(a.nrows(), 1.25);
  gb::Descriptor d;
  d.mxv = gb::MxvMethod::pull;

  gb::Vector<double> serial(a.nrows());
  {
    ThreadGuard guard(1);
    gb::mxv(serial, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u,
            d);
  }
  for (int threads : {2, 4, 7}) {
    ThreadGuard guard(threads);
    gb::Vector<double> par(a.nrows());
    gb::mxv(par, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u, d);
    EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
  }
}

TEST(Parallel, GustavsonMxmBitIdenticalAcrossThreadCounts) {
  auto a = lagraph::rmat(9, 8, 5);
  gb::Descriptor d;
  d.mxm = gb::MxmMethod::gustavson;

  gb::Matrix<double> serial(a.nrows(), a.ncols());
  {
    ThreadGuard guard(1);
    gb::mxm(serial, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a,
            d);
  }
  for (int threads : {2, 4, 7}) {
    ThreadGuard guard(threads);
    gb::Matrix<double> par(a.nrows(), a.ncols());
    gb::mxm(par, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a, d);
    EXPECT_TRUE(lagraph::isequal(serial, par)) << threads << " threads";
  }
}

TEST(Parallel, MaskedGustavsonParallelIsCorrect) {
  auto a = lagraph::rmat(9, 8, 6);
  gb::Matrix<bool> mask(a.nrows(), a.ncols());
  gb::apply(mask, gb::no_mask, gb::no_accum, [](double) { return true; },
            lagraph::rmat(9, 2, 7));
  gb::Descriptor d = gb::desc_s;
  d.mxm = gb::MxmMethod::gustavson;

  gb::Matrix<std::int64_t> serial(a.nrows(), a.ncols());
  {
    ThreadGuard guard(1);
    gb::mxm(serial, mask, gb::no_accum, gb::plus_pair<std::int64_t>(), a, a,
            d);
  }
  ThreadGuard guard(4);
  gb::Matrix<std::int64_t> par(a.nrows(), a.ncols());
  gb::mxm(par, mask, gb::no_accum, gb::plus_pair<std::int64_t>(), a, a, d);
  EXPECT_TRUE(lagraph::isequal(serial, par));
}

TEST(Parallel, AlgorithmsUnchangedUnderParallelKernels) {
  auto adj = lagraph::rmat(10, 8, 8);
  lagraph::Graph g(adj.dup(), lagraph::Kind::undirected);
  lagraph::Graph g2(adj.dup(), lagraph::Kind::undirected);

  std::uint64_t tri_serial, tri_par;
  gb::Vector<std::uint64_t> cc_serial, cc_par;
  {
    ThreadGuard guard(1);
    tri_serial = lagraph::triangle_count(g);
    cc_serial = lagraph::connected_components(g);
  }
  {
    ThreadGuard guard(4);
    tri_par = lagraph::triangle_count(g2);
    cc_par = lagraph::connected_components(g2);
  }
  EXPECT_EQ(tri_serial, tri_par);
  EXPECT_TRUE(lagraph::isequal(cc_serial, cc_par));
}

TEST(Parallel, ChunkHelperCoversRangeExactlyOnce) {
  std::vector<int> hits(1000, 0);
  gb::platform::parallel_for_chunks(
      1000, 7, [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      });
  for (int h : hits) EXPECT_EQ(h, 1);

  // Degenerate shapes.
  gb::platform::parallel_for_chunks(0, 4, [&](std::size_t, std::size_t,
                                              std::size_t) { FAIL(); });
  int calls = 0;
  gb::platform::parallel_for_chunks(
      3, 10, [&](std::size_t, std::size_t lo, std::size_t hi) {
        calls += static_cast<int>(hi - lo);
      });
  EXPECT_EQ(calls, 3);
}

TEST(Parallel, ExclusiveScanComputesPointerArray) {
  std::vector<std::int64_t> v{3, 0, 5, 2};
  EXPECT_EQ(gb::platform::exclusive_scan(v), 10);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 3, 3, 8}));

  std::vector<std::uint32_t> empty;
  EXPECT_EQ(gb::platform::exclusive_scan(empty), 0u);
}

TEST(Parallel, ExclusiveScanDetectsOverflow) {
  // Synthetic near-limit case: a 32-bit pointer array whose total nnz would
  // wrap. Without the check this silently corrupts every row offset; the
  // checked path throws, and the C API maps it to GrB_INDEX_OUT_OF_BOUNDS.
  constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
  std::vector<std::int32_t> wraps{kMax - 1, 1, 1};
  EXPECT_THROW(gb::platform::exclusive_scan(wraps), std::overflow_error);

  // Exactly at the limit is representable and must pass.
  std::vector<std::int32_t> fits{kMax - 1, 1};
  EXPECT_EQ(gb::platform::exclusive_scan(fits), kMax);
  EXPECT_EQ(fits, (std::vector<std::int32_t>{0, kMax - 1}));

  // Unsigned index type near 2^32.
  constexpr std::uint32_t kUMax = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> uwraps{kUMax, 1};
  EXPECT_THROW(gb::platform::exclusive_scan(uwraps), std::overflow_error);

  // Negative counts are malformed input, not a wrapped sum in disguise.
  std::vector<std::int32_t> negative{4, -1};
  EXPECT_THROW(gb::platform::exclusive_scan(negative), std::overflow_error);
}
