// Property-based tests: algebraic laws the library must satisfy regardless
// of input — semiring axioms over exact integer domains, operation
// identities ((A')' = A, (AB)' = B'A', distributivity), mask partition
// laws, and invariants of the algorithm layer (handshake lemma, permutation
// invariance of triangle counts).
#include <gtest/gtest.h>

#include <random>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "test_common.hpp"

using gb::Index;
using namespace testutil;

namespace {

/// Exact random int64 matrix (values small enough that products stay exact).
gb::Matrix<std::int64_t> random_int_matrix(Index n, double density,
                                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> val(-3, 3);
  std::bernoulli_distribution keep(density);
  std::vector<Index> r, c;
  std::vector<std::int64_t> v;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (keep(rng)) {
        r.push_back(i);
        c.push_back(j);
        v.push_back(val(rng));
      }
    }
  }
  gb::Matrix<std::int64_t> a(n, n);
  a.build(r, c, v, gb::Plus{});
  return a;
}

gb::Matrix<std::int64_t> mult(const gb::Matrix<std::int64_t>& a,
                              const gb::Matrix<std::int64_t>& b) {
  gb::Matrix<std::int64_t> c(a.nrows(), b.ncols());
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<std::int64_t>(), a, b);
  return c;
}

}  // namespace

class AlgebraLaws : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraLaws, MxmIsAssociative) {
  std::uint64_t seed = 5000 + GetParam();
  auto a = random_int_matrix(10, 0.4, seed);
  auto b = random_int_matrix(10, 0.4, seed + 1);
  auto c = random_int_matrix(10, 0.4, seed + 2);
  EXPECT_TRUE(lagraph::isequal(mult(mult(a, b), c), mult(a, mult(b, c))));
}

TEST_P(AlgebraLaws, MxmDistributesOverEwiseAdd) {
  std::uint64_t seed = 5100 + GetParam();
  auto a = random_int_matrix(9, 0.4, seed);
  auto b = random_int_matrix(9, 0.4, seed + 1);
  auto c = random_int_matrix(9, 0.4, seed + 2);
  // A(B + C) == AB + AC over the exact plus_times ring.
  gb::Matrix<std::int64_t> bc(9, 9);
  gb::ewise_add(bc, gb::no_mask, gb::no_accum, gb::Plus{}, b, c);
  auto lhs = mult(a, bc);
  gb::Matrix<std::int64_t> rhs(9, 9);
  gb::ewise_add(rhs, gb::no_mask, gb::no_accum, gb::Plus{}, mult(a, b),
                mult(a, c));
  // Pattern caveat: AB + AC may carry explicit zeros where A(B+C) has
  // cancellation-free holes — compare as dense values.
  for (Index i = 0; i < 9; ++i) {
    for (Index j = 0; j < 9; ++j) {
      EXPECT_EQ(lhs.extract_element(i, j).value_or(0),
                rhs.extract_element(i, j).value_or(0))
          << i << "," << j;
    }
  }
}

TEST_P(AlgebraLaws, TransposeInvolutionAndProductRule) {
  std::uint64_t seed = 5200 + GetParam();
  auto a = random_int_matrix(8, 0.4, seed);
  auto b = random_int_matrix(8, 0.4, seed + 1);
  EXPECT_TRUE(lagraph::isequal(gb::transposed(gb::transposed(a)), a));
  // (AB)' == B'A'.
  EXPECT_TRUE(lagraph::isequal(gb::transposed(mult(a, b)),
                               mult(gb::transposed(b), gb::transposed(a))));
}

TEST_P(AlgebraLaws, IdentityMatrixIsNeutral) {
  std::uint64_t seed = 5300 + GetParam();
  auto a = random_int_matrix(11, 0.4, seed);
  auto i = gb::Matrix<std::int64_t>::identity(11, 1);
  EXPECT_TRUE(lagraph::isequal(mult(a, i), a));
  EXPECT_TRUE(lagraph::isequal(mult(i, a), a));
}

TEST_P(AlgebraLaws, MinPlusIsIdempotentSemiring) {
  std::uint64_t seed = 5400 + GetParam();
  auto a = random_matrix(10, 10, 0.4, seed);
  // min is idempotent: A min+ A-zero-diagonal style closure is monotone:
  // D_{k+1} = min(D_k, D_k min.+ D_k) never increases any entry.
  gb::Matrix<double> d = a.dup();
  for (int round = 0; round < 3; ++round) {
    gb::Matrix<double> next = d.dup();
    gb::mxm(next, gb::no_mask, gb::Min{}, gb::min_plus<double>(), d, d);
    std::vector<Index> r, c;
    std::vector<double> v;
    d.extract_tuples(r, c, v);
    for (std::size_t k = 0; k < v.size(); ++k) {
      auto e = next.extract_element(r[k], c[k]);
      ASSERT_TRUE(e.has_value());
      EXPECT_LE(*e, v[k] + 1e-12);
    }
    d = std::move(next);
  }
}

TEST_P(AlgebraLaws, MaskPartitionLaw) {
  // With replace: C<M> = T and C<!M> = T partition the unmasked result —
  // their union (disjoint) equals T exactly.
  std::uint64_t seed = 5500 + GetParam();
  auto t = random_matrix(10, 10, 0.5, seed);
  auto m = random_matrix(10, 10, 0.5, seed + 1);

  gb::Matrix<double> pos(10, 10), neg(10, 10), whole(10, 10);
  gb::Descriptor d_pos = gb::desc_rs;
  gb::Descriptor d_neg = gb::desc_rsc;
  gb::apply(pos, m, gb::no_accum, gb::Identity{}, t, d_pos);
  gb::apply(neg, m, gb::no_accum, gb::Identity{}, t, d_neg);
  gb::apply(whole, gb::no_mask, gb::no_accum, gb::Identity{}, t);

  EXPECT_EQ(pos.nvals() + neg.nvals(), whole.nvals());
  gb::Matrix<double> joined(10, 10);
  gb::ewise_add(joined, gb::no_mask, gb::no_accum, gb::Plus{}, pos, neg);
  EXPECT_TRUE(lagraph::isequal(joined, whole));
}

TEST_P(AlgebraLaws, ReduceCommutesWithTranspose) {
  std::uint64_t seed = 5600 + GetParam();
  auto a = random_int_matrix(9, 0.5, seed);
  // Row-reduce of A' == column-reduce of A.
  gb::Vector<std::int64_t> r1(9), r2(9);
  gb::reduce(r1, gb::no_mask, gb::no_accum, gb::plus_monoid<std::int64_t>(),
             gb::transposed(a));
  gb::reduce(r2, gb::no_mask, gb::no_accum, gb::plus_monoid<std::int64_t>(), a,
             gb::desc_t0);
  EXPECT_TRUE(lagraph::isequal(r1, r2));
}

TEST_P(AlgebraLaws, ScalarReduceEqualsTotalOfRowReduce) {
  std::uint64_t seed = 5700 + GetParam();
  auto a = random_int_matrix(12, 0.4, seed);
  gb::Vector<std::int64_t> rows(12);
  gb::reduce(rows, gb::no_mask, gb::no_accum, gb::plus_monoid<std::int64_t>(),
             a);
  EXPECT_EQ(gb::reduce_scalar(gb::plus_monoid<std::int64_t>(), a),
            gb::reduce_scalar(gb::plus_monoid<std::int64_t>(), rows));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLaws, ::testing::Range(0, 6));

// --- algorithm-level invariants ---------------------------------------------

class GraphInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphInvariants, HandshakeLemma) {
  lagraph::Graph g(lagraph::erdos_renyi(100, 300, GetParam()),
                   lagraph::Kind::undirected);
  auto deg = lagraph::to_dense_std(g.out_degree(), std::int64_t{0});
  std::int64_t total = 0;
  for (auto d : deg) total += d;
  EXPECT_EQ(static_cast<std::uint64_t>(total), g.nvals());
}

TEST_P(GraphInvariants, TriangleCountIsPermutationInvariant) {
  auto a = lagraph::rmat(6, 6, GetParam());
  lagraph::Graph g1(a.dup(), lagraph::Kind::undirected);

  // Permute and recount.
  std::vector<Index> perm(a.nrows());
  for (Index i = 0; i < a.nrows(); ++i) perm[i] = i;
  std::mt19937_64 rng(GetParam() * 7 + 1);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<Index> r, c;
  std::vector<double> v;
  a.extract_tuples(r, c, v);
  for (auto& x : r) x = perm[x];
  for (auto& x : c) x = perm[x];
  gb::Matrix<double> pa(a.nrows(), a.ncols());
  pa.build(r, c, v, gb::First{});
  lagraph::Graph g2(std::move(pa), lagraph::Kind::undirected);

  EXPECT_EQ(lagraph::triangle_count(g1), lagraph::triangle_count(g2));
  auto c1 = lagraph::subgraph_count(g1);
  auto c2 = lagraph::subgraph_count(g2);
  EXPECT_EQ(c1.four_cycles, c2.four_cycles);
  EXPECT_EQ(c1.wedges, c2.wedges);
}

TEST_P(GraphInvariants, BfsLevelsAreLipschitz) {
  // |level(u) - level(v)| <= 1 across every edge of the undirected graph.
  lagraph::Graph g(lagraph::erdos_renyi(80, 200, GetParam() + 3),
                   lagraph::Kind::undirected);
  auto res = lagraph::bfs(g, 0);
  auto lvl = lagraph::to_dense_std(res.level, std::int64_t{-1});
  std::vector<Index> r, c;
  std::vector<double> v;
  g.adj().extract_tuples(r, c, v);
  for (std::size_t k = 0; k < r.size(); ++k) {
    if (lvl[r[k]] < 0 || lvl[c[k]] < 0) {
      // Reachability is edge-closed: both sides or neither.
      EXPECT_EQ(lvl[r[k]] < 0, lvl[c[k]] < 0);
    } else {
      EXPECT_LE(std::abs(lvl[r[k]] - lvl[c[k]]), 1);
    }
  }
}

TEST_P(GraphInvariants, SsspDominatesBfsHops) {
  // With weights >= 1, shortest distance >= hop count.
  lagraph::Graph g(
      lagraph::randomize_weights(lagraph::erdos_renyi(60, 180, GetParam()),
                                 1.0, 5.0, GetParam() + 1),
      lagraph::Kind::undirected);
  auto hops = lagraph::bfs(g, 0).level;
  auto dist = lagraph::sssp_bellman_ford(g, 0).dist;
  auto h = lagraph::to_dense_std(hops, std::int64_t{-1});
  auto d = lagraph::to_dense_std(dist,
                                 std::numeric_limits<double>::infinity());
  for (Index v = 0; v < g.nrows(); ++v) {
    if (h[v] >= 0) {
      EXPECT_GE(d[v] + 1e-12, static_cast<double>(h[v])) << v;
    } else {
      EXPECT_TRUE(std::isinf(d[v]));
    }
  }
}

TEST_P(GraphInvariants, ComponentsRefineReachability) {
  // Vertices in the same BFS tree share a component label.
  lagraph::Graph g(lagraph::erdos_renyi(100, 120, GetParam() + 9),
                   lagraph::Kind::undirected);
  auto cc = lagraph::to_dense_std(lagraph::connected_components(g),
                                  std::uint64_t{0});
  auto lvl = lagraph::to_dense_std(lagraph::bfs(g, 0).level, std::int64_t{-1});
  for (Index v = 0; v < g.nrows(); ++v) {
    if (lvl[v] >= 0) {
      EXPECT_EQ(cc[v], cc[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariants,
                         ::testing::Values(11, 22, 33, 44));
