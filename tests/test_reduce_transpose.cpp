// reduce (row/scalar) and transpose vs the dense mimics; terminal early exit
// must not change results.
#include <gtest/gtest.h>

#include "test_common.hpp"

using namespace testutil;
using gb::Index;

class ReduceTransposeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceTransposeSweep, RowReduceMatchesMimic) {
  std::uint64_t seed = 900 + GetParam() * 47;
  auto a = random_matrix(10, 10, 0.45, seed);
  auto da = ref::from_gb(a);

  for (auto d : mask_descriptor_sweep()) {
    for (bool ta : {false, true}) {
      d.transpose_a = ta;
      auto m = random_vector(10, 0.5, seed + 1);
      auto dm = ref::from_gb(m);
      gb::Vector<double> w = random_vector(10, 0.3, seed + 2);
      auto dw = ref::from_gb(w);
      gb::reduce(w, m, gb::no_accum, gb::plus_monoid<double>(), a, d);
      ref::reduce(dw, &dm, static_cast<const gb::Plus*>(nullptr),
                  gb::plus_monoid<double>(), da, d);
      EXPECT_TRUE(ref::equal(dw, w)) << "plus " << desc_name(d);

      gb::Vector<double> w2 = random_vector(10, 0.3, seed + 3);
      auto dw2 = ref::from_gb(w2);
      gb::reduce(w2, m, gb::no_accum, gb::min_monoid<double>(), a, d);
      ref::reduce(dw2, &dm, static_cast<const gb::Plus*>(nullptr),
                  gb::min_monoid<double>(), da, d);
      EXPECT_TRUE(ref::equal(dw2, w2)) << "min " << desc_name(d);
    }
  }
}

TEST_P(ReduceTransposeSweep, ScalarReduceMatchesMimic) {
  std::uint64_t seed = 1100 + GetParam() * 53;
  auto a = random_matrix(12, 7, 0.4, seed);
  auto da = ref::from_gb(a);
  EXPECT_DOUBLE_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), a),
                   ref::reduce_scalar(gb::plus_monoid<double>(), da));
  EXPECT_DOUBLE_EQ(gb::reduce_scalar(gb::max_monoid<double>(), a),
                   ref::reduce_scalar(gb::max_monoid<double>(), da));
}

TEST_P(ReduceTransposeSweep, TransposeMatchesMimic) {
  std::uint64_t seed = 1300 + GetParam() * 59;
  auto a = random_matrix(9, 9, 0.4, seed);
  auto da = ref::from_gb(a);
  for (auto d : mask_descriptor_sweep()) {
    for (bool ta : {false, true}) {
      d.transpose_a = ta;
      auto m = random_matrix(9, 9, 0.4, seed + 1);
      auto dm = ref::from_gb(m);
      gb::Matrix<double> c = random_matrix(9, 9, 0.2, seed + 2);
      auto dc = ref::from_gb(c);
      gb::transpose(c, m, gb::no_accum, a, d);
      ref::transpose(dc, &dm, static_cast<const gb::Plus*>(nullptr), da, d);
      EXPECT_TRUE(ref::equal(dc, c)) << desc_name(d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceTransposeSweep, ::testing::Range(0, 4));

TEST(Reduce, EmptyRowsProduceNoEntry) {
  gb::Matrix<double> a(4, 4);
  a.set_element(1, 2, 5.0);
  gb::Vector<double> w(4);
  gb::reduce(w, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(), a);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extract_element(1).value(), 5.0);
}

TEST(Reduce, ScalarOfEmptyIsIdentity) {
  gb::Matrix<double> a(3, 3);
  EXPECT_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), a), 0.0);
  gb::Vector<double> v(3);
  EXPECT_EQ(gb::reduce_scalar(gb::times_monoid<double>(), v), 1.0);
}

TEST(Reduce, VectorScalarBothReps) {
  gb::Vector<double> v(10);
  v.set_element(2, 3.0);
  v.set_element(7, 4.0);
  v.to_sparse();
  EXPECT_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), v), 7.0);
  v.to_dense();
  EXPECT_EQ(gb::reduce_scalar(gb::plus_monoid<double>(), v), 7.0);
}

TEST(Reduce, TerminalEarlyExitIsCorrect) {
  // LOR reduce over a row with `true` early in it must equal the full fold.
  gb::Matrix<bool> a(2, 100);
  a.set_element(0, 0, true);
  for (Index j = 1; j < 100; ++j) a.set_element(0, j, false);
  gb::Vector<bool> w(2);
  gb::reduce(w, gb::no_mask, gb::no_accum, gb::lor_monoid(), a);
  EXPECT_EQ(w.extract_element(0).value(), true);
}

TEST(Transpose, BasicShapeAndContent) {
  gb::Matrix<double> a(2, 3);
  a.set_element(0, 2, 7.0);
  a.set_element(1, 0, 8.0);
  auto t = gb::transposed(a);
  EXPECT_EQ(t.nrows(), 3u);
  EXPECT_EQ(t.ncols(), 2u);
  EXPECT_EQ(t.extract_element(2, 0).value(), 7.0);
  EXPECT_EQ(t.extract_element(0, 1).value(), 8.0);
}

TEST(Transpose, WithInputTransposeIsCopy) {
  auto a = random_matrix(5, 5, 0.5, 77);
  gb::Matrix<double> c(5, 5);
  gb::transpose(c, gb::no_mask, gb::no_accum, a, gb::desc_t0);
  std::vector<Index> r1, c1, r2, c2;
  std::vector<double> v1, v2;
  a.extract_tuples(r1, c1, v1);
  c.extract_tuples(r2, c2, v2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(v1, v2);
}
