// Sanity tests of the ORACLE layer itself: a conformance harness is only as
// good as its reference, so the textbook implementations get hand-computed
// fixtures of their own (the same discipline the paper applies by keeping
// the MATLAB mimics "visually inspectable").
#include <gtest/gtest.h>

#include <cmath>

#include "reference/simple_graph.hpp"

using gb::Index;
using ref::SimpleGraph;

namespace {

/// The "bull" graph: triangle 0-1-2 with horns 1-3 and 2-4.
SimpleGraph bull() {
  SimpleGraph g(5);
  auto both = [&g](Index u, Index v) {
    g.add_edge(u, v);
    g.add_edge(v, u);
  };
  both(0, 1);
  both(1, 2);
  both(0, 2);
  both(1, 3);
  both(2, 4);
  return g;
}

}  // namespace

TEST(Reference, BfsLevelsOnBull) {
  auto g = bull();
  auto lvl = ref::bfs_levels(g, 3);
  EXPECT_EQ(lvl, (std::vector<std::int64_t>{2, 1, 2, 0, 3}));
}

TEST(Reference, DijkstraHandComputed) {
  // 0 ->(1) 1 ->(1) 2, and 0 ->(5) 2 directly: best to 2 is 2.
  SimpleGraph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  auto d = ref::dijkstra(g, 0);
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(d[1], 1.0);
  EXPECT_EQ(d[2], 2.0);
}

TEST(Reference, BellmanFordNegativeCycle) {
  SimpleGraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, -2.0);
  EXPECT_TRUE(ref::bellman_ford(g, 0).empty());
}

TEST(Reference, ComponentsOnBullPlusIsolated) {
  SimpleGraph g = bull();
  g.n = 7;
  g.adj.resize(7);
  auto cc = ref::connected_components(g);
  EXPECT_EQ(cc, (std::vector<Index>{0, 0, 0, 0, 0, 5, 6}));
}

TEST(Reference, CountsOnBull) {
  auto g = bull();
  EXPECT_EQ(ref::count_triangles(g), 1u);
  // wedges: d = {2,3,3,1,1} -> 1 + 3 + 3 = 7.
  EXPECT_EQ(ref::count_wedges(g), 7u);
  // claws: only the two degree-3 vertices contribute C(3,3)=1 each.
  EXPECT_EQ(ref::count_claws(g), 2u);
  EXPECT_EQ(ref::count_4cycles(g), 0u);
  // tailed triangles: the one triangle has two pendant edges.
  EXPECT_EQ(ref::count_tailed_triangles(g), 2u);
}

TEST(Reference, FourCyclesOnPrism) {
  // Triangular prism = two triangles joined by a 3-edge matching: three C4s.
  SimpleGraph g(6);
  auto both = [&g](Index u, Index v) {
    g.add_edge(u, v);
    g.add_edge(v, u);
  };
  both(0, 1);
  both(1, 2);
  both(2, 0);
  both(3, 4);
  both(4, 5);
  both(5, 3);
  both(0, 3);
  both(1, 4);
  both(2, 5);
  EXPECT_EQ(ref::count_4cycles(g), 3u);
  EXPECT_EQ(ref::count_triangles(g), 2u);
}

TEST(Reference, KtrussPeeling) {
  auto g = bull();
  EXPECT_EQ(ref::ktruss_edge_count(g, 3), 3u);  // the triangle
  EXPECT_EQ(ref::ktruss_edge_count(g, 4), 0u);
}

TEST(Reference, PagerankUniformOnRegular) {
  SimpleGraph g(4);
  for (Index i = 0; i < 4; ++i) {
    g.add_edge(i, (i + 1) % 4);
    g.add_edge((i + 1) % 4, i);
  }
  auto pr = ref::pagerank(g);
  for (double p : pr) EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(Reference, BetweennessOnPath) {
  // Path 0-1-2: vertex 1 mediates 2 ordered pairs.
  SimpleGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  auto bc = ref::betweenness(g);
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  EXPECT_NEAR(bc[1], 2.0, 1e-12);
  EXPECT_NEAR(bc[2], 0.0, 1e-12);
}

TEST(Reference, CheckersAcceptAndReject) {
  auto g = bull();
  // MIS {3, 4, 0} is independent and maximal.
  EXPECT_TRUE(ref::valid_mis(g, {1, 0, 0, 1, 1}));
  // {0, 1} adjacent: not independent.
  EXPECT_FALSE(ref::valid_mis(g, {1, 1, 0, 1, 1}));
  // {3, 4} alone: not maximal (0 uncovered).
  EXPECT_FALSE(ref::valid_mis(g, {0, 0, 0, 1, 1}));

  EXPECT_TRUE(ref::valid_coloring(g, {1, 2, 3, 1, 1}));
  EXPECT_FALSE(ref::valid_coloring(g, {1, 1, 3, 1, 1}));  // 0-1 clash
  EXPECT_FALSE(ref::valid_coloring(g, {0, 2, 3, 1, 1}));  // uncolored

  // Matching {1-3, 2-4} leaves 0 with no unmatched neighbour: maximal.
  EXPECT_TRUE(ref::valid_maximal_matching(g, {0, 3, 4, 1, 2}));
  // Empty matching is not maximal.
  EXPECT_FALSE(ref::valid_maximal_matching(g, {0, 1, 2, 3, 4}));

  // Conductance of the triangle side of the bull: cut 2, vol min(8, 2).
  double phi = ref::conductance(g, {1, 1, 1, 0, 0});
  EXPECT_NEAR(phi, 1.0, 1e-12);  // cut=2 / min(vol=8, vol=2) = 1
}

TEST(Reference, ParentValidatorCatchesBadTrees) {
  auto g = bull();
  auto lvl = ref::bfs_levels(g, 0);
  // A valid tree.
  EXPECT_TRUE(ref::valid_bfs_parents(g, 0, {0, 0, 0, 1, 2}, lvl));
  // Parent not one level above.
  EXPECT_FALSE(ref::valid_bfs_parents(g, 0, {0, 0, 0, 0, 2}, lvl));
  // Parent not adjacent.
  EXPECT_FALSE(ref::valid_bfs_parents(g, 0, {0, 0, 0, 2, 2}, lvl));
}
