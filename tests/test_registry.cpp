// The semiring-count claims of §II-A: 960 unique built-in semirings with
// the extended operator set, 600 with the standard C API operators.
#include <gtest/gtest.h>

#include <set>

#include "graphblas/registry.hpp"

TEST(Registry, PaperCounts) {
  EXPECT_EQ(gb::semiring_count_extended(), 960u);
  EXPECT_EQ(gb::semiring_count_standard(), 600u);
}

TEST(Registry, ElevenBuiltinTypes) {
  EXPECT_EQ(gb::builtin_types().size(), 11u);
  EXPECT_EQ(gb::builtin_types().front(), "bool");
}

TEST(Registry, RecordsAreUnique) {
  std::set<std::tuple<std::string, std::string, std::string>> seen;
  for (const auto& r : gb::semiring_registry()) {
    auto key = std::make_tuple(r.add_monoid, r.multiply, r.type);
    EXPECT_TRUE(seen.insert(key).second)
        << r.add_monoid << "." << r.multiply << "." << r.type;
  }
}

TEST(Registry, DecompositionMatchesUserGuide) {
  // 680 = 4 numeric monoids x 17 T->T ops x 10 non-bool types;
  // 240 = 4 bool monoids x 6 comparisons x 10 non-bool types;
  //  40 = 4 canonical bool monoids x 10 canonical bool ops.
  std::size_t nonbool_t2t = 0, nonbool_cmp = 0, bool_domain = 0;
  const std::set<std::string> cmp = {"eq", "ne", "gt", "lt", "ge", "le"};
  for (const auto& r : gb::semiring_registry()) {
    if (r.type == "bool") {
      ++bool_domain;
    } else if (cmp.count(r.multiply) &&
               (r.add_monoid == "lor" || r.add_monoid == "land" ||
                r.add_monoid == "lxor" || r.add_monoid == "eq")) {
      ++nonbool_cmp;
    } else {
      ++nonbool_t2t;
    }
  }
  EXPECT_EQ(nonbool_t2t, 680u);
  EXPECT_EQ(nonbool_cmp, 240u);
  EXPECT_EQ(bool_domain, 40u);
}

TEST(Registry, BoolAliasesCollapse) {
  // Over bool, MIN==LAND and MAX==PLUS==LOR etc.; no raw "min"/"plus"
  // monoid names may survive in bool-domain records.
  for (const auto& r : gb::semiring_registry()) {
    if (r.type != "bool") continue;
    EXPECT_TRUE(r.add_monoid == "lor" || r.add_monoid == "land" ||
                r.add_monoid == "lxor" || r.add_monoid == "eq")
        << r.add_monoid;
    EXPECT_NE(r.multiply, "min");
    EXPECT_NE(r.multiply, "times");
    EXPECT_NE(r.multiply, "div");
    EXPECT_NE(r.multiply, "iseq");
  }
}

TEST(Registry, StandardSubsetExcludesExtensions) {
  // IS* ops and logical ops over numeric types are GxB extensions.
  for (const auto& r : gb::semiring_registry()) {
    if (r.type == "bool") continue;
    if (r.multiply.rfind("is", 0) == 0) {
      EXPECT_FALSE(r.standard_c_api) << r.multiply << "." << r.type;
    }
    if (r.multiply == "lor" || r.multiply == "land" || r.multiply == "lxor") {
      EXPECT_FALSE(r.standard_c_api) << r.multiply << "." << r.type;
    }
  }
}
