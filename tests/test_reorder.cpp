// Graph relabeling (§VI "changing representation of graphs"): P A P'
// correctness, degree ordering, and invariance of algorithm results under
// relabeling.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "lagraph/util/reorder.hpp"

using gb::Index;
using namespace lagraph;

TEST(Reorder, PermutationMatrixShape) {
  std::vector<Index> perm = {2, 0, 1};
  auto p = permutation_matrix(perm);
  EXPECT_EQ(p.nvals(), 3u);
  EXPECT_TRUE(p.extract_element(2, 0).has_value());  // old 0 -> new 2
  EXPECT_TRUE(p.extract_element(0, 1).has_value());
  EXPECT_TRUE(p.extract_element(1, 2).has_value());

  // P P' = I.
  gb::Matrix<double> ppt(3, 3);
  gb::Descriptor d;
  d.transpose_b = true;
  gb::mxm(ppt, gb::no_mask, gb::no_accum, gb::plus_times<double>(), p, p, d);
  EXPECT_TRUE(isequal(ppt, gb::Matrix<double>::identity(3, 1.0)));
}

TEST(Reorder, RejectsNonBijections) {
  EXPECT_THROW(permutation_matrix({0, 0, 1}), gb::Error);
  EXPECT_THROW(permutation_matrix({0, 5, 1}), gb::Error);
}

TEST(Reorder, PermuteMatchesManualRelabel) {
  auto a = lagraph::randomize_weights(lagraph::erdos_renyi(20, 60, 3), 1.0,
                                      5.0, 4);
  std::vector<Index> perm(20);
  std::iota(perm.begin(), perm.end(), Index{0});
  std::mt19937_64 rng(9);
  std::shuffle(perm.begin(), perm.end(), rng);

  auto b = permute(a, perm);

  // Manual relabel of the tuples.
  std::vector<Index> r, c;
  std::vector<double> v;
  a.extract_tuples(r, c, v);
  for (auto& x : r) x = perm[x];
  for (auto& x : c) x = perm[x];
  gb::Matrix<double> want(20, 20);
  want.build(r, c, v, gb::Second{});
  EXPECT_TRUE(isequal(want, b));
}

TEST(Reorder, InvertPermutationRoundTrips) {
  std::vector<Index> perm = {3, 1, 4, 0, 2};
  auto inv = invert_permutation(perm);
  auto a = lagraph::erdos_renyi(5, 8, 7);
  auto round = permute(permute(a, perm), inv);
  EXPECT_TRUE(isequal(a, round));
}

TEST(Reorder, DegreeOrderSortsDegrees) {
  Graph g(star_graph(10), Kind::undirected);  // hub degree 9, leaves 1
  auto perm = degree_order(g, /*ascending=*/true);
  EXPECT_EQ(perm[0], 9u);  // the hub (old id 0) goes last
  auto desc = degree_order(g, /*ascending=*/false);
  EXPECT_EQ(desc[0], 0u);  // descending: hub first

  // Relabeled degrees are monotone.
  Graph sorted(permute(g.adj(), perm), Kind::undirected);
  auto deg = to_dense_std(sorted.out_degree(), std::int64_t{0});
  for (std::size_t k = 1; k < deg.size(); ++k) {
    EXPECT_LE(deg[k - 1], deg[k]);
  }
}

TEST(Reorder, AlgorithmResultsInvariantUnderRelabeling) {
  auto a = lagraph::rmat(7, 8, 11);
  Graph g1(a.dup(), Kind::undirected);
  auto perm = degree_order(g1);
  Graph g2(permute(a, perm), Kind::undirected);

  EXPECT_EQ(triangle_count(g1), triangle_count(g2));
  auto c1 = subgraph_count(g1);
  auto c2 = subgraph_count(g2);
  EXPECT_EQ(c1.four_cycles, c2.four_cycles);
  EXPECT_EQ(c1.tailed_triangles, c2.tailed_triangles);
  EXPECT_EQ(ktruss(g1, 4).nedges, ktruss(g2, 4).nedges);

  // Component structure maps through the permutation.
  auto cc1 = to_dense_std(connected_components(g1), std::uint64_t{0});
  auto cc2 = to_dense_std(connected_components(g2), std::uint64_t{0});
  for (Index v = 0; v < g1.nrows(); ++v) {
    for (Index w = v + 1; w < g1.nrows(); ++w) {
      EXPECT_EQ(cc1[v] == cc1[w], cc2[perm[v]] == cc2[perm[w]]);
    }
  }
}
