// Tests for the resumable-execution layer:
//
//   * Checkpoint — stream/file round-trips, and rejection of corrupt, torn,
//     truncated, and trailing-garbage capsules (load() validates sizes and
//     the CRC before unpacking, so a bad file never becomes a bad object);
//   * resume determinism — an interrupted run resumed from its capsule must
//     be bit-identical to an uninterrupted run, for every poll ordinal the
//     trip can land on and at several OpenMP widths;
//   * Runner — slicing cadence, the degradation ladder, retry-with-backoff
//     recovery from budget trips, give-up semantics, cancellation, and the
//     crash-safe checkpoint file (persist on interrupt / resume on start /
//     retire on completion; a corrupt file restarts instead of failing).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graphblas/graphblas.hpp"
#include "lagraph/checkpoint.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/runner.hpp"
#include "lagraph/util/generator.hpp"
#include "platform/governor.hpp"

using gb::platform::Governor;
using gb::platform::GovernorScope;
using gb::platform::ScopedTripAfter;
using lagraph::Checkpoint;
using lagraph::StopReason;

namespace {

// Set the env cap before any metered allocation caches the parse (same
// priming as test_governor.cpp: the ambient cap must never interfere).
const bool env_primed = [] {
  ::setenv("LAGRAPH_MEM_BUDGET", "109951162777600", 1);  // 100 TiB
  return true;
}();

lagraph::Graph ring(gb::Index n) {
  return lagraph::Graph(lagraph::cycle_graph(n), lagraph::Kind::undirected);
}

lagraph::Graph path(gb::Index n) {
  return lagraph::Graph(lagraph::path_graph(n), lagraph::Kind::undirected);
}

template <class T>
std::pair<std::vector<gb::Index>, std::vector<T>> tuples(
    const gb::Vector<T>& v) {
  std::pair<std::vector<gb::Index>, std::vector<T>> p;
  v.extract_tuples(p.first, p.second);
  return p;
}

template <class T>
std::tuple<std::vector<gb::Index>, std::vector<gb::Index>, std::vector<T>>
tuples(const gb::Matrix<T>& m) {
  std::tuple<std::vector<gb::Index>, std::vector<gb::Index>, std::vector<T>> t;
  m.extract_tuples(std::get<0>(t), std::get<1>(t), std::get<2>(t));
  return t;
}

Checkpoint sample_capsule() {
  Checkpoint cp;
  cp.set_algorithm("sample");
  cp.put_u64("iter", 7);
  cp.put_i64("delta", -3);
  cp.put_f64("resid", 0.125);
  cp.put_array("order", std::vector<std::uint64_t>{5, 4, 3, 2, 1});
  gb::Vector<double> v(8);
  v.build(std::vector<gb::Index>{1, 3, 6}, std::vector<double>{0.5, 1.5, 2.5},
          gb::Second{});
  cp.put_vector("v", v);
  gb::Matrix<double> m(4, 4);
  m.set_element(0, 1, 2.0);
  m.set_element(3, 2, -1.0);
  m.wait();
  cp.put_matrix("m", m);
  return cp;
}

std::string serialized_sample() {
  std::ostringstream out;
  sample_capsule().save(out);
  return out.str();
}

}  // namespace

// --- Checkpoint serialization ----------------------------------------------

TEST(Checkpoint, StreamRoundTripPreservesEverySlot) {
  const std::string bytes = serialized_sample();
  std::istringstream in(bytes);
  Checkpoint cp = Checkpoint::load(in);
  EXPECT_EQ(cp.algorithm(), "sample");
  EXPECT_EQ(cp.get_u64("iter"), 7u);
  EXPECT_EQ(cp.get_i64("delta"), -3);
  EXPECT_EQ(cp.get_f64("resid"), 0.125);
  EXPECT_EQ(cp.get_array<std::uint64_t>("order"),
            (std::vector<std::uint64_t>{5, 4, 3, 2, 1}));
  EXPECT_EQ(tuples(cp.get_vector<double>("v")),
            tuples(sample_capsule().get_vector<double>("v")));
  EXPECT_EQ(tuples(cp.get_matrix<double>("m")),
            tuples(sample_capsule().get_matrix<double>("m")));
}

TEST(Checkpoint, FileRoundTripAndAtomicReplace) {
  const std::string file = ::testing::TempDir() + "lagraph_ckpt_roundtrip.lacp";
  std::remove(file.c_str());
  const Checkpoint orig = sample_capsule();
  orig.save(file);
  // Saving over an existing capsule replaces it whole (temp file + rename).
  orig.save(file);
  Checkpoint cp = Checkpoint::load(file);
  EXPECT_EQ(cp.algorithm(), "sample");
  EXPECT_EQ(cp.get_u64("iter"), 7u);
  std::remove(file.c_str());
}

TEST(Checkpoint, RejectsEveryBitFlip) {
  // Flip one bit at a sample of positions across the whole image (header,
  // directory, payload, CRC footer): each must be rejected as malformed,
  // never silently accepted.
  const std::string good = serialized_sample();
  ASSERT_GT(good.size(), 16u);
  for (std::size_t pos = 0; pos < good.size();
       pos += 1 + good.size() / 97) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    std::istringstream in(bad);
    EXPECT_THROW(Checkpoint::load(in), gb::Error)
        << "bit flip at byte " << pos << " was not rejected";
  }
}

TEST(Checkpoint, RejectsTornAndTruncatedImages) {
  // A torn write — any strict prefix of the image — must be rejected: the
  // declared payload sizes no longer match what the stream can deliver, and
  // load() notices before allocating payload storage.
  const std::string good = serialized_sample();
  for (std::size_t len = 0; len < good.size();
       len += 1 + good.size() / 61) {
    std::istringstream in(good.substr(0, len));
    EXPECT_THROW(Checkpoint::load(in), gb::Error)
        << "prefix of " << len << " bytes was not rejected";
  }
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  std::string bad = serialized_sample();
  bad += "extra";
  std::istringstream in(bad);
  EXPECT_THROW(Checkpoint::load(in), gb::Error);
}

TEST(Checkpoint, RejectsWrongAlgorithmOnResume) {
  Checkpoint cp = sample_capsule();
  EXPECT_NO_THROW(lagraph::check_resume(cp, "sample"));
  EXPECT_THROW(lagraph::check_resume(cp, "pagerank"), gb::Error);
}

TEST(Checkpoint, MissingFileThrowsAndDoesNotCreate) {
  const std::string file = ::testing::TempDir() + "lagraph_ckpt_missing.lacp";
  std::remove(file.c_str());
  EXPECT_THROW(Checkpoint::load(file), gb::Error);
  std::ifstream probe(file);
  EXPECT_FALSE(probe.good());
}

// --- Resume determinism ----------------------------------------------------

namespace {

// Drives `run` with the trip landing on every sampled poll ordinal. For
// each interruption: the capsule (if captured) is resumed ungoverned and
// the final result must equal the uninterrupted baseline exactly — the
// contract every `*_run` driver documents. Returns once an ordinal
// survives the whole run untripped.
template <class Run, class Extract>
void soak_resume_determinism(const char* name, Run&& run, Extract&& extract) {
  const auto base = run(nullptr);
  ASSERT_FALSE(lagraph::is_interruption(base.stop)) << name;
  const auto want = extract(base);

  constexpr std::uint64_t kMaxN = 200000;
  std::uint64_t stride = 1;
  for (std::uint64_t n = 0; n < kMaxN; n += stride) {
    Checkpoint cp;
    bool interrupted = false;
    {
      Governor gov;
      GovernorScope s(&gov);
      ScopedTripAfter trip(n, Governor::Trip::cancel);
      auto part = run(nullptr);
      interrupted = lagraph::is_interruption(part.stop);
      if (interrupted) {
        EXPECT_EQ(part.stop, StopReason::cancelled)
            << name << " at poll " << n;
        cp = std::move(part.checkpoint);
      }
    }
    if (!interrupted) return;  // the whole run fits under this ordinal
    // An empty capsule means capture was impossible (trip during setup):
    // resuming from scratch is the documented fallback.
    auto resumed = cp.empty() ? run(nullptr) : run(&cp);
    ASSERT_FALSE(lagraph::is_interruption(resumed.stop))
        << name << " resumed run tripped with the governor gone, poll " << n;
    EXPECT_EQ(extract(resumed), want)
        << name << ": interrupted at poll " << n
        << " + resume differs from the uninterrupted run";
    // Dense early coverage (setup, first iterations), geometric tail.
    if (n >= 24) stride = 1 + n / 3;
  }
  ADD_FAILURE() << name << " never completed under poll trips";
}

}  // namespace

TEST(ResumeDeterminism, Pagerank) {
  auto g = path(48);
  soak_resume_determinism(
      "pagerank",
      [&](const Checkpoint* cp) {
        return lagraph::pagerank(g, 0.85, 1e-12, 80, cp);
      },
      [](const lagraph::PageRankResult& r) {
        return std::make_tuple(tuples(r.rank), r.iterations, r.residual,
                               r.converged);
      });
}

TEST(ResumeDeterminism, BfsPush) {
  auto g = ring(48);
  soak_resume_determinism(
      "bfs",
      [&](const Checkpoint* cp) {
        return lagraph::bfs(g, 3, lagraph::BfsVariant::push, cp);
      },
      [](const lagraph::BfsResult& r) {
        return std::make_tuple(tuples(r.level), tuples(r.parent), r.depth);
      });
}

TEST(ResumeDeterminism, SsspBellmanFord) {
  auto g = ring(40);
  soak_resume_determinism(
      "sssp",
      [&](const Checkpoint* cp) {
        return lagraph::sssp_bellman_ford(g, 0, cp);
      },
      [](const lagraph::SsspResult& r) {
        return std::make_pair(tuples(r.dist), r.iterations);
      });
}

TEST(ResumeDeterminism, ConnectedComponents) {
  lagraph::Graph g(lagraph::erdos_renyi(64, 128, 7), lagraph::Kind::undirected);
  soak_resume_determinism(
      "cc",
      [&](const Checkpoint* cp) {
        return lagraph::connected_components_run(g, cp);
      },
      [](const lagraph::CcResult& r) { return tuples(r.labels); });
}

TEST(ResumeDeterminism, Betweenness) {
  auto g = path(24);
  const std::vector<gb::Index> sources{0, 5, 11};
  soak_resume_determinism(
      "bc",
      [&](const Checkpoint* cp) {
        return lagraph::betweenness_run(g, sources, cp);
      },
      [](const lagraph::BcResult& r) {
        return std::make_pair(tuples(r.centrality), r.levels);
      });
}

TEST(ResumeDeterminism, AStar) {
  auto g = path(32);
  soak_resume_determinism(
      "astar",
      [&](const Checkpoint* cp) {
        return lagraph::astar_run(g, 0, 31, gb::Vector<double>(32), cp);
      },
      [](const lagraph::AStarResult& r) {
        return std::make_tuple(r.distance, r.path, r.expanded);
      });
}

TEST(ResumeDeterminism, DnnInference) {
  const gb::Index n = 24;
  gb::Matrix<double> y0 = lagraph::random_matrix(8, n, 40, 11);
  std::vector<gb::Matrix<double>> weights;
  for (int l = 0; l < 6; ++l) {
    weights.push_back(
        lagraph::random_matrix(n, n, 60, 100 + static_cast<unsigned>(l)));
  }
  const std::vector<double> biases(6, -0.05);
  soak_resume_determinism(
      "dnn",
      [&](const Checkpoint* cp) {
        return lagraph::dnn_inference_run(y0, weights, biases, 32.0, cp);
      },
      [](const lagraph::DnnResult& r) {
        return std::make_pair(tuples(r.y), r.layers_done);
      });
}

#ifdef _OPENMP
TEST(ResumeDeterminism, StableAcrossThreadCounts) {
  // The capsule must not bake in the parallel schedule: a run interrupted
  // and resumed at 1, 2, and 4 threads lands on the same answer each time.
  auto g = path(48);
  const int saved = omp_get_max_threads();
  for (int t : {1, 2, 4}) {
    omp_set_num_threads(t);
    soak_resume_determinism(
        ("pagerank@" + std::to_string(t)).c_str(),
        [&](const Checkpoint* cp) {
          return lagraph::pagerank(g, 0.85, 1e-10, 60, cp);
        },
        [](const lagraph::PageRankResult& r) {
          return std::make_pair(tuples(r.rank), r.iterations);
        });
  }
  omp_set_num_threads(saved);
}
#endif  // _OPENMP

// --- Runner ----------------------------------------------------------------

TEST(Runner, CompletesUngovernedRunInOneSlice) {
  lagraph::Runner runner;
  auto g = ring(32);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 100, cp);
  });
  EXPECT_EQ(res.stop, StopReason::converged);
  EXPECT_EQ(runner.report().slices, 1);
  EXPECT_EQ(runner.report().retries, 0);
  EXPECT_EQ(runner.report().degradations, 0);
  EXPECT_FALSE(runner.report().gave_up);
  EXPECT_FALSE(runner.report().resumed_from_file);
}

TEST(Runner, SlicedRunMatchesStraightThrough) {
  // A generous per-slice deadline: whether the run takes one slice or
  // several, the stitched-together result must equal the unsliced one.
  auto g = path(64);
  const auto base = lagraph::pagerank(g, 0.85, 1e-12, 120);

  lagraph::RunnerOptions opts;
  opts.slice_ms = 5.0;
  lagraph::Runner runner(opts);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-12, 120, cp);
  });
  ASSERT_FALSE(lagraph::is_interruption(res.stop));
  EXPECT_GE(runner.report().slices, 1);
  EXPECT_EQ(tuples(res.rank), tuples(base.rank));
  EXPECT_EQ(res.iterations, base.iterations);
}

TEST(Runner, LadderThenRetriesRecoverFromTightBudget) {
  // 2 KiB per slice cannot hold even one iteration's temporaries, so the
  // first slices trip out_of_memory; the ladder climbs its three rungs,
  // then retries escalate the budget until an attempt fits. The recovered
  // answer must equal an unconstrained run.
  auto g = ring(128);
  const auto base = lagraph::pagerank(g, 0.85, 1e-9, 100);

  lagraph::RunnerOptions opts;
  opts.slice_budget = 2048;
  opts.retry.max_attempts = 14;
  opts.retry.backoff_ms = 0.01;  // keep the test fast
  opts.retry.budget_growth = 2.0;
  lagraph::Runner runner(opts);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 100, cp);
  });
  ASSERT_FALSE(lagraph::is_interruption(res.stop));
  EXPECT_FALSE(runner.report().gave_up);
  EXPECT_EQ(runner.report().degradations, 3);
  EXPECT_GE(runner.report().retries, 1);
  EXPECT_EQ(tuples(res.rank), tuples(base.rank));
}

TEST(Runner, GivesUpWhenBudgetNeverFits) {
  // 64 bytes with no escalation: every rung and every retry trips, and the
  // Runner hands back the partial result instead of looping forever.
  auto g = ring(64);
  lagraph::RunnerOptions opts;
  opts.slice_budget = 64;
  opts.retry.max_attempts = 2;
  opts.retry.backoff_ms = 0.01;
  opts.retry.budget_growth = 1.0;
  lagraph::Runner runner(opts);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 50, cp);
  });
  EXPECT_EQ(res.stop, StopReason::out_of_memory);
  EXPECT_TRUE(runner.report().gave_up);
  EXPECT_EQ(runner.report().degradations, 3);
  EXPECT_EQ(runner.report().retries, 2);
}

TEST(Runner, CancelSurfacesImmediatelyAndIsNeverRetried) {
  lagraph::Runner runner;
  runner.governor().cancel();
  auto g = ring(64);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 50, cp);
  });
  EXPECT_EQ(res.stop, StopReason::cancelled);
  EXPECT_EQ(runner.report().slices, 1);
  EXPECT_EQ(runner.report().retries, 0);
  EXPECT_FALSE(runner.report().gave_up);
}

TEST(Runner, SliceCapStopsNoProgressLoops) {
  // A sticky deadline trip makes every slice time out without progress;
  // max_slices must convert the would-be infinite cadence into a clean
  // give-up that still reports the timeout.
  auto g = ring(64);
  lagraph::RunnerOptions opts;
  opts.slice_ms = 1e9;  // slicing enabled, wall clock never the stopper
  opts.max_slices = 5;
  lagraph::Runner runner(opts);
  // Low ordinal: the fused iteration body polls a handful of times per
  // round, and the trip must land inside the run, not after convergence.
  ScopedTripAfter trip(3, Governor::Trip::deadline);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 50, cp);
  });
  EXPECT_EQ(res.stop, StopReason::timeout);
  EXPECT_TRUE(runner.report().gave_up);
  EXPECT_EQ(runner.report().slices, 5);
}

TEST(Runner, PersistsCheckpointAndResumesFromFile) {
  const std::string file = ::testing::TempDir() + "lagraph_runner_resume.lacp";
  std::remove(file.c_str());
  auto g = path(48);
  const auto base = lagraph::pagerank(g, 0.85, 1e-12, 100);

  // First process: interrupted mid-run, capsule persisted.
  {
    lagraph::RunnerOptions opts;
    opts.checkpoint_path = file;
    lagraph::Runner runner(opts);
    ScopedTripAfter trip(60, Governor::Trip::cancel);
    auto res = runner.run([&](const Checkpoint* cp) {
      return lagraph::pagerank(g, 0.85, 1e-12, 100, cp);
    });
    ASSERT_EQ(res.stop, StopReason::cancelled);
    std::ifstream probe(file, std::ios::binary);
    ASSERT_TRUE(probe.good()) << "interrupted slice did not persist";
  }

  // Second process: picks the capsule up, finishes, retires the file, and
  // the stitched result is exactly the uninterrupted one.
  {
    lagraph::RunnerOptions opts;
    opts.checkpoint_path = file;
    lagraph::Runner runner(opts);
    auto res = runner.run([&](const Checkpoint* cp) {
      return lagraph::pagerank(g, 0.85, 1e-12, 100, cp);
    });
    ASSERT_FALSE(lagraph::is_interruption(res.stop));
    EXPECT_TRUE(runner.report().resumed_from_file);
    EXPECT_EQ(tuples(res.rank), tuples(base.rank));
    EXPECT_EQ(res.iterations, base.iterations);
    std::ifstream probe(file, std::ios::binary);
    EXPECT_FALSE(probe.good()) << "completed run did not retire the capsule";
  }
}

TEST(Runner, CorruptCheckpointFileRestartsFresh) {
  // A corrupt capsule is indistinguishable from a missing one by design:
  // the run restarts from scratch and still completes correctly.
  const std::string file = ::testing::TempDir() + "lagraph_runner_corrupt.lacp";
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << "LACPgarbage-not-a-capsule";
  }
  auto g = ring(32);
  const auto base = lagraph::pagerank(g, 0.85, 1e-9, 100);
  lagraph::RunnerOptions opts;
  opts.checkpoint_path = file;
  lagraph::Runner runner(opts);
  auto res = runner.run([&](const Checkpoint* cp) {
    return lagraph::pagerank(g, 0.85, 1e-9, 100, cp);
  });
  ASSERT_FALSE(lagraph::is_interruption(res.stop));
  EXPECT_FALSE(runner.report().resumed_from_file);
  EXPECT_EQ(tuples(res.rank), tuples(base.rank));
  // Completion retires even a corrupt leftover.
  std::ifstream probe(file, std::ios::binary);
  EXPECT_FALSE(probe.good());
}
