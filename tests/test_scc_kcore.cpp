// Strongly connected components (FW-BW) vs Tarjan, and k-core decomposition
// vs textbook peeling.
#include <gtest/gtest.h>

#include <map>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

/// Canonicalise a component labelling to "label = min member id" so two
/// labellings of the same partition compare equal.
std::vector<Index> canonical(const std::vector<std::uint64_t>& label) {
  std::map<std::uint64_t, Index> minid;
  for (Index v = 0; v < label.size(); ++v) {
    auto it = minid.find(label[v]);
    if (it == minid.end() || v < it->second) minid[label[v]] = v;
  }
  std::vector<Index> out(label.size());
  for (Index v = 0; v < label.size(); ++v) out[v] = minid[label[v]];
  return out;
}

void expect_scc_matches(Graph&& g) {
  auto got =
      canonical(to_dense_std(strongly_connected_components(g), std::uint64_t{0}));
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto want = ref::strongly_connected_components(sg);
  ASSERT_EQ(got.size(), want.size());
  for (Index v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

void expect_kcore_matches(Graph&& g) {
  auto got = to_dense_std(kcore(g), std::uint64_t{0});
  auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
  auto want = ref::kcore(sg);
  ASSERT_EQ(got.size(), want.size());
  for (Index v = 0; v < want.size(); ++v) {
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

}  // namespace

TEST(Scc, DirectedCycleIsOneComponent) {
  gb::Matrix<double> a(5, 5);
  for (Index i = 0; i < 5; ++i) a.set_element(i, (i + 1) % 5, 1.0);
  Graph g(std::move(a), Kind::directed);
  auto labels = to_dense_std(strongly_connected_components(g),
                             std::uint64_t{0});
  for (Index v = 1; v < 5; ++v) EXPECT_EQ(labels[v], labels[0]);
}

TEST(Scc, DagIsAllSingletons) {
  gb::Matrix<double> a(5, 5);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(0, 3, 1.0);
  a.set_element(3, 4, 1.0);
  Graph g(std::move(a), Kind::directed);
  auto labels = canonical(
      to_dense_std(strongly_connected_components(g), std::uint64_t{0}));
  for (Index v = 0; v < 5; ++v) EXPECT_EQ(labels[v], v);
}

TEST(Scc, TwoCyclesJoinedByBridge) {
  // 0->1->2->0 (cycle), 2->3 (bridge), 3->4->5->3 (cycle).
  gb::Matrix<double> a(6, 6);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(2, 0, 1.0);
  a.set_element(2, 3, 1.0);
  a.set_element(3, 4, 1.0);
  a.set_element(4, 5, 1.0);
  a.set_element(5, 3, 1.0);
  Graph g(std::move(a), Kind::directed);
  expect_scc_matches(std::move(g));
}

TEST(Scc, RandomDirectedGraphsMatchTarjan) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    expect_scc_matches(Graph(erdos_renyi(60, 150, seed, /*symmetric=*/false),
                             Kind::directed));
  }
  // Denser: larger SCCs.
  expect_scc_matches(Graph(erdos_renyi(40, 300, 9, false), Kind::directed));
  // Sparse with many singletons + isolated vertices.
  expect_scc_matches(Graph(erdos_renyi(80, 60, 10, false), Kind::directed));
}

TEST(Scc, UndirectedGraphReducesToComponents) {
  Graph g(erdos_renyi(50, 60, 5), Kind::undirected);
  auto scc = canonical(
      to_dense_std(strongly_connected_components(g), std::uint64_t{0}));
  auto cc = to_dense_std(connected_components(g), std::uint64_t{0});
  for (Index v = 0; v < 50; ++v) {
    EXPECT_EQ(scc[v], static_cast<Index>(cc[v]));
  }
}

TEST(Kcore, KnownShapes) {
  // Clique K5: coreness 4 everywhere.
  {
    Graph g(complete_graph(5), Kind::undirected);
    auto c = to_dense_std(kcore(g), std::uint64_t{0});
    for (auto x : c) EXPECT_EQ(x, 4u);
  }
  // Tree (star): coreness 1 everywhere.
  {
    Graph g(star_graph(8), Kind::undirected);
    auto c = to_dense_std(kcore(g), std::uint64_t{0});
    for (auto x : c) EXPECT_EQ(x, 1u);
  }
  // Triangle with a tail: triangle vertices 2, tail 1, isolated 0.
  {
    gb::Matrix<double> a(5, 5);
    auto add = [&a](Index u, Index v) {
      a.set_element(u, v, 1.0);
      a.set_element(v, u, 1.0);
    };
    add(0, 1);
    add(1, 2);
    add(0, 2);
    add(2, 3);
    Graph g(std::move(a), Kind::undirected);
    auto c = to_dense_std(kcore(g), std::uint64_t{9});
    EXPECT_EQ(c[0], 2u);
    EXPECT_EQ(c[1], 2u);
    EXPECT_EQ(c[2], 2u);
    EXPECT_EQ(c[3], 1u);
    EXPECT_EQ(c[4], 0u);  // isolated
  }
}

TEST(Kcore, RandomGraphsMatchPeeling) {
  for (std::uint64_t seed : {6u, 7u, 8u}) {
    expect_kcore_matches(Graph(erdos_renyi(80, 240, seed), Kind::undirected));
  }
  expect_kcore_matches(Graph(rmat(7, 6, 9), Kind::undirected));
  expect_kcore_matches(Graph(grid2d(6, 6), Kind::undirected));
}

TEST(Kcore, SelfLoopsIgnored) {
  auto a = complete_graph(4);
  a.set_element(1, 1, 1.0);
  Graph g(std::move(a), Kind::undirected);
  auto c = to_dense_std(kcore(g), std::uint64_t{0});
  for (auto x : c) EXPECT_EQ(x, 3u);
}
