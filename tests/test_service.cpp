// Concurrency contract suite for the serving layer (tentpole of the
// robustness PR): snapshot isolation, admission control, overload shedding,
// and the stall watchdog — plus the freeze/epoch substrate underneath.
//
// Every test here is meant to run under TSan as well as plain: readers hold
// only frozen snapshots, so any data-race report is a real contract
// violation, not test noise. The soak asserts the strongest property the
// issue names: N client threads hammering one shared published graph get
// results bit-identical to a serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "capi/graphblas_c.h"
#include "graphblas/graphblas.hpp"
#include "lagraph/lagraph.hpp"
#include "lagraph/serving.hpp"
#include "lagraph/util/generator.hpp"
#include "platform/alloc.hpp"
#include "platform/env.hpp"
#include "platform/epoch.hpp"
#include "platform/governor.hpp"
#include "platform/memory.hpp"
#include "platform/service.hpp"

using gb::Index;
using gb::platform::CancelledError;
using gb::platform::Epoch;
using gb::platform::Governor;
using gb::platform::MemoryMeter;
using gb::platform::OverloadedError;
using gb::platform::ScopedFailAfter;
using gb::platform::Service;
using gb::platform::ServicePolicy;
using gb::platform::ServiceStats;
using gb::platform::Versioned;
using lagraph::Graph;
using lagraph::GraphService;
using lagraph::ServiceJobResult;
using lagraph::StopReason;

namespace {

// Set the env cap before any metered allocation caches the parse (same
// priming the governor suite does), so the budget never interferes here.
const bool env_primed = [] {
  ::setenv("LAGRAPH_MEM_BUDGET", "109951162777600", 1);  // 100 TiB
  return true;
}();

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// (index, value) flattening used to compare serving results bit-identically
/// against direct algorithm runs.
template <class T>
std::pair<std::vector<Index>, std::vector<double>> tuples(
    const gb::Vector<T>& v) {
  std::vector<Index> idx;
  std::vector<T> vals;
  v.extract_tuples(idx, vals);
  return {idx, std::vector<double>(vals.begin(), vals.end())};
}

Graph make_test_graph(std::uint64_t seed) {
  gb::Matrix<double> a = lagraph::randomize_weights(
      lagraph::erdos_renyi(64, 512, seed), 0.5, 2.0, seed);
  return Graph(std::move(a), lagraph::Kind::directed);
}

}  // namespace

// --- epoch reclamation ------------------------------------------------------

TEST(Epoch, RetireWithoutReadersDrainsImmediately) {
  Epoch::drain();  // clear anything previous tests parked
  auto p = std::make_shared<const int>(7);
  std::weak_ptr<const int> w = p;
  Epoch::retire(std::shared_ptr<const void>(p, p.get()));
  p.reset();
  EXPECT_FALSE(w.expired());  // parked in limbo, not freed
  EXPECT_GE(Epoch::drain(), std::size_t{1});
  EXPECT_TRUE(w.expired());
}

TEST(Epoch, PinnedGuardBlocksDrainUntilReleased) {
  Epoch::drain();
  std::weak_ptr<const int> w;
  {
    Epoch::Guard pin;  // pinned *before* the retirement stamp
    auto p = std::make_shared<const int>(42);
    w = p;
    Epoch::retire(std::shared_ptr<const void>(p, p.get()));
    p.reset();
    EXPECT_EQ(Epoch::drain(), std::size_t{0});  // reader still pinned
    EXPECT_FALSE(w.expired());
  }
  EXPECT_GE(Epoch::drain(), std::size_t{1});
  EXPECT_TRUE(w.expired());
}

TEST(Epoch, VersionedPublishKeepsPinnedReadersStable) {
  Epoch::drain();
  Versioned<int> cell;
  cell.publish(std::make_shared<const int>(1));
  EXPECT_EQ(cell.version(), 1u);

  Epoch::Guard pin;
  auto v1 = cell.acquire();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(*v1, 1);

  cell.publish(std::make_shared<const int>(2));
  EXPECT_EQ(cell.version(), 2u);
  EXPECT_EQ(*v1, 1);                 // old acquisition untouched
  EXPECT_EQ(*cell.acquire(), 2);     // new readers see the new version
  EXPECT_GE(Epoch::limbo_size(), std::size_t{1});
}

// --- freeze / snapshot substrate --------------------------------------------

TEST(Freeze, VectorServesBothFormsWhenFrozen) {
  gb::Vector<double> v(8);
  v.set_element(1, 1.5);
  v.set_element(6, -2.0);
  const auto before = tuples(v);

  v.freeze();
  EXPECT_TRUE(v.frozen());
  // Both physical forms must now be readable without mutation: sparse...
  EXPECT_EQ(std::vector<Index>(v.indices().begin(), v.indices().end()),
            std::vector<Index>({1, 6}));
  // ...and dense, off the pre-materialised frozen aux.
  auto dv = v.dense_values();
  auto pm = v.present();
  ASSERT_EQ(dv.size(), 8u);
  ASSERT_EQ(pm.size(), 8u);
  EXPECT_EQ(dv[1], 1.5);
  EXPECT_EQ(dv[6], -2.0);
  EXPECT_EQ(pm[0], 0);
  EXPECT_EQ(pm[1], 1);
  EXPECT_EQ(tuples(v), before);

  // Mutation thaws: the vector is writable again and the caches reset.
  v.set_element(3, 9.0);
  EXPECT_FALSE(v.frozen());
  EXPECT_EQ(v.nvals(), 3u);
}

TEST(Freeze, VectorSnapshotIsStableAcrossMutation) {
  gb::Vector<double> v(5);
  v.set_element(0, 1.0);
  auto snap = v.snapshot();
  EXPECT_TRUE(snap->frozen());
  EXPECT_EQ(v.snapshot(), snap);  // cached while unmutated

  v.set_element(0, 99.0);
  EXPECT_EQ(snap->nvals(), 1u);
  auto [idx, vals] = tuples(*snap);
  EXPECT_EQ(vals[0], 1.0);  // old value: isolation
  auto snap2 = v.snapshot();
  EXPECT_NE(snap2, snap);
  EXPECT_EQ(tuples(*snap2).second[0], 99.0);
}

TEST(Freeze, MatrixSnapshotIsStableAcrossMutation) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 2.0);
  a.set_element(3, 2, 4.0);
  auto snap = a.snapshot();
  EXPECT_TRUE(snap->frozen());
  EXPECT_EQ(a.snapshot(), snap);

  a.set_element(0, 1, -7.0);
  EXPECT_FALSE(a.frozen());
  auto x = snap->extract_element(0, 1);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 2.0);  // snapshot kept the pre-write value
  x = a.extract_element(0, 1);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, -7.0);
}

TEST(Freeze, GraphSnapshotMaterialisesPropertyCaches) {
  Graph g = make_test_graph(7);
  auto snap = g.snapshot();
  EXPECT_TRUE(snap->frozen());
  // Every lazily cached property must already be materialised: these calls
  // are const reads on a frozen object (TSan would flag any mutation).
  EXPECT_EQ(snap->out_degree().size(), 64u);
  EXPECT_EQ(snap->in_degree().size(), 64u);
  (void)snap->is_symmetric();
  (void)snap->nself_edges();
}

// --- first-use races (satellite: lazy-init audit) ---------------------------

TEST(FirstUse, EnvOnceIsRaceFreeAndStable) {
  ::setenv("LAGRAPH_TEST_ENV_ONCE", "1337", 1);
  static gb::platform::EnvOnce<std::size_t> cap{"LAGRAPH_TEST_ENV_ONCE",
                                               gb::platform::env_parse_bytes};
  std::vector<std::thread> ts;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      if (cap.get() != 1337u) mismatches.fetch_add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // A later env change must NOT be observed: read-once semantics.
  ::setenv("LAGRAPH_TEST_ENV_ONCE", "7", 1);
  EXPECT_EQ(cap.get(), 1337u);
}

TEST(FirstUse, RegistryAndKernelsSurviveConcurrentFirstUse) {
  // Run under `-R test_service` in TSan CI this binary *is* the first user
  // of the semiring registry and operator tables: hammer them from eight
  // threads at once.
  std::vector<std::thread> ts;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    ts.emplace_back([&, t] {
      try {
        gb::Matrix<double> a(8, 8);
        for (Index i = 0; i < 8; ++i)
          a.set_element(i, (i + 1 + static_cast<Index>(t)) % 8, 1.0);
        gb::Vector<double> x(8);
        for (Index i = 0; i < 8; ++i) x.set_element(i, double(i));
        gb::Vector<double> y(8);
        gb::mxv(y, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, x);
        if (y.size() != 8) failures.fetch_add(1);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Service core: admission, shedding, watchdog ----------------------------

TEST(Service, RunsJobsAndCountsThem) {
  Service svc(ServicePolicy{.workers = 2, .queue_limit = 64});
  std::atomic<int> ran{0};
  std::vector<Service::Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(svc.submit([&](Governor&) { ran.fetch_add(1); }));
  }
  for (auto& t : tickets) EXPECT_EQ(t.wait(), Service::State::done);
  EXPECT_EQ(ran.load(), 16);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 16u);
  EXPECT_EQ(st.completed, 16u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(st.failed, 0u);
  svc.quiesce();
  EXPECT_EQ(svc.stats().queue_depth, 0u);
  EXPECT_EQ(svc.stats().running, 0u);
}

TEST(Service, FailedJobRethrowsItsError) {
  Service svc(ServicePolicy{.workers = 1});
  auto t = svc.submit(
      [](Governor&) { throw std::runtime_error("job exploded"); });
  EXPECT_EQ(t.wait(), Service::State::failed);
  EXPECT_THROW(t.rethrow(), std::runtime_error);
  EXPECT_EQ(svc.stats().failed, 1u);
}

TEST(Service, BoundedQueueShedsDeterministically) {
  // One worker, one queue slot. Block the worker, fill the slot: the next
  // submission MUST shed with OverloadedError — and nothing may deadlock.
  Service svc(ServicePolicy{.workers = 1, .queue_limit = 1});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.submit([&](Governor&) {
    entered.store(true);
    while (!release.load()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);  // worker busy, queue empty

  auto queued = svc.submit([](Governor&) {});  // fills the one slot
  EXPECT_THROW(svc.submit([](Governor&) {}), OverloadedError);
  EXPECT_THROW(svc.submit([](Governor&) {}), OverloadedError);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.shed, 2u);
  EXPECT_EQ(st.queue_depth, 1u);

  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  EXPECT_EQ(queued.wait(), Service::State::done);
  // After draining, the service accepts work again: shedding is a rejection
  // of the one request, never a degraded mode.
  EXPECT_EQ(svc.submit([](Governor&) {}).wait(), Service::State::done);
}

TEST(Service, MemoryWatermarkShedsNewWork) {
  // A 1-byte shed watermark with live metered objects in the process: every
  // submission sheds, deterministically, while the service stays healthy.
  gb::Vector<double> pressure(1024);
  for (Index i = 0; i < 1024; ++i) pressure.set_element(i, 1.0);
  ASSERT_GT(MemoryMeter::current_bytes(), 1u);

  Service svc(ServicePolicy{.workers = 1, .queue_limit = 8, .shed_bytes = 1});
  EXPECT_THROW(svc.submit([](Governor&) {}), OverloadedError);
  EXPECT_EQ(svc.stats().shed, 1u);
  EXPECT_EQ(svc.stats().submitted, 0u);
}

TEST(Service, CancelBeforeRunSkipsTheJob) {
  Service svc(ServicePolicy{.workers = 1, .queue_limit = 4});
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  auto blocker = svc.submit([&](Governor&) {
    entered.store(true);
    while (!release.load()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  std::atomic<bool> ran{false};
  auto queued = svc.submit([&](Governor&) { ran.store(true); });
  queued.cancel();
  release.store(true);
  EXPECT_EQ(queued.wait(), Service::State::cancelled);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(blocker.wait(), Service::State::done);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, RunningJobObservesCrossThreadCancel) {
  Service svc(ServicePolicy{.workers = 1});
  auto t = svc.submit([](Governor& gov) {
    while (!gov.cancelled()) sleep_ms(0.2);
    throw CancelledError{};
  });
  while (t.state() != Service::State::running) sleep_ms(0.2);
  t.cancel();
  EXPECT_EQ(t.wait(), Service::State::cancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, WatchdogCancelsStalledJobAndServiceKeepsServing) {
  // The stalled job makes no governor polls; the watchdog must cancel it
  // within its threshold, and the freed worker must keep serving.
  Service svc(ServicePolicy{.workers = 1,
                            .queue_limit = 8,
                            .watchdog_stall_ms = 25,
                            .watchdog_period_ms = 2});
  auto stalled = svc.submit([](Governor& gov) {
    // Cooperative stall: burns its worker until the watchdog's cancel lands.
    while (!gov.cancelled()) sleep_ms(0.5);
    throw CancelledError{};
  });
  EXPECT_EQ(stalled.wait(), Service::State::cancelled);
  const ServiceStats st = svc.stats();
  EXPECT_GE(st.watchdog_cancels, 1u);
  EXPECT_EQ(st.cancelled, 1u);

  // The worker reclaimed by the watchdog serves the next request normally.
  std::atomic<int> ran{0};
  auto next = svc.submit([&](Governor&) { ran.fetch_add(1); });
  EXPECT_EQ(next.wait(), Service::State::done);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Service, PolicyDeadlineTripsLongRequests) {
  Service svc(ServicePolicy{.workers = 1, .request_timeout_ms = 10});
  auto t = svc.submit([](Governor& gov) {
    for (;;) {
      sleep_ms(1);
      gov.poll();  // policy-governed: deadline armed by the worker
    }
  });
  // A timeout surfaces as failed (TimeoutError), distinct from cancelled.
  EXPECT_EQ(t.wait(), Service::State::failed);
  EXPECT_THROW(t.rethrow(), gb::platform::TimeoutError);
}

// --- GraphService: snapshot isolation + bit-identical serving ---------------

TEST(GraphService, ServesResultsBitIdenticalToSerial) {
  GraphService::Options opts;
  opts.service.workers = 2;
  opts.service.queue_limit = 256;
  GraphService svc(opts);
  svc.publish("g", make_test_graph(11));

  // Serial ground truth on an identical graph.
  Graph serial = make_test_graph(11);
  const auto pr = tuples(lagraph::pagerank(serial, 0.85, 1e-9, 100).rank);
  const auto bf = tuples(
      lagraph::bfs(serial, 0, lagraph::BfsVariant::direction_optimizing)
          .level);
  const auto ss = tuples(lagraph::sssp_bellman_ford(serial, 0).dist);

  const std::uint64_t jp = svc.submit_algorithm("pagerank", "g", 0);
  const std::uint64_t jb = svc.submit_algorithm("bfs", "g", 0);
  const std::uint64_t js = svc.submit_algorithm("sssp", "g", 0);

  const ServiceJobResult& rp = svc.wait(jp);
  // PageRank legitimately reports `converged`; only interruptions are errors.
  EXPECT_FALSE(lagraph::is_interruption(rp.stop));
  EXPECT_EQ(std::make_pair(rp.idx, rp.vals), pr);
  const ServiceJobResult& rb = svc.wait(jb);
  EXPECT_EQ(std::make_pair(rb.idx, rb.vals), bf);
  const ServiceJobResult& rs = svc.wait(js);
  EXPECT_EQ(std::make_pair(rs.idx, rs.vals), ss);
}

TEST(GraphService, SubmissionPinsTheVersionCurrentAtSubmitTime) {
  GraphService svc;
  svc.publish("g", make_test_graph(21));
  EXPECT_EQ(svc.version("g"), 1u);

  Graph same = make_test_graph(21);
  const auto v1_truth = tuples(lagraph::pagerank(same, 0.85, 1e-9, 100).rank);

  // Submit against v1, then republish a *different* graph before waiting:
  // the in-flight job must keep its v1 snapshot (snapshot isolation).
  const std::uint64_t job = svc.submit_algorithm("pagerank", "g", 0);
  svc.publish("g", make_test_graph(99));
  EXPECT_EQ(svc.version("g"), 2u);

  const ServiceJobResult& res = svc.wait(job);
  EXPECT_EQ(std::make_pair(res.idx, res.vals), v1_truth);

  // A job submitted after the republish sees v2.
  Graph other = make_test_graph(99);
  const auto v2_truth =
      tuples(lagraph::pagerank(other, 0.85, 1e-9, 100).rank);
  const ServiceJobResult& res2 =
      svc.wait(svc.submit_algorithm("pagerank", "g", 0));
  EXPECT_EQ(std::make_pair(res2.idx, res2.vals), v2_truth);

  // Retirement is deterministic: quiesce drains the displaced v1 snapshot.
  svc.quiesce();
  EXPECT_EQ(Epoch::limbo_size(), std::size_t{0});
}

TEST(GraphService, EightClientSoakIsBitIdenticalToSerial) {
  GraphService::Options opts;
  opts.service.workers = 2;
  opts.service.queue_limit = 1024;
  GraphService svc(opts);
  svc.publish("g", make_test_graph(33));

  Graph serial = make_test_graph(33);
  const auto pr = tuples(lagraph::pagerank(serial, 0.85, 1e-9, 100).rank);
  std::vector<std::pair<std::vector<Index>, std::vector<double>>> bfs_truth;
  for (Index s = 0; s < 8; ++s) {
    bfs_truth.push_back(tuples(
        lagraph::bfs(serial, s, lagraph::BfsVariant::direction_optimizing)
            .level));
  }

  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        for (int j = 0; j < kJobsPerClient; ++j) {
          // Alternate algorithms so concurrently-running jobs differ.
          if ((c + j) % 2 == 0) {
            const auto& r =
                svc.wait(svc.submit_algorithm("pagerank", "g", 0));
            if (std::make_pair(r.idx, r.vals) != pr) mismatches.fetch_add(1);
          } else {
            const Index src = static_cast<Index>(c);
            const auto& r = svc.wait(svc.submit_algorithm(
                "bfs", "g", static_cast<std::uint64_t>(src)));
            if (std::make_pair(r.idx, r.vals) != bfs_truth[c])
              mismatches.fetch_add(1);
          }
        }
      } catch (...) {
        mismatches.fetch_add(1000);  // no exception is acceptable here
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, std::uint64_t{kClients * kJobsPerClient});
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.shed, 0u);
  svc.quiesce();
}

TEST(GraphService, ConcurrentRepublishNeverDisturbsInFlightReaders) {
  GraphService svc;
  svc.publish("g", make_test_graph(5));
  Graph same = make_test_graph(5);
  const auto truth = tuples(lagraph::pagerank(same, 0.85, 1e-9, 100).rank);

  // Writer republishes graphs under the served name as fast as it can while
  // clients keep submitting; each client captured its snapshot at submit
  // time, so pre-republish submissions must still match the v-at-submit
  // truth. We only submit while version()==1 observations hold the race
  // window closed — detection is via the returned result.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    for (int i = 0; !stop_writer.load(); ++i) {
      svc.publish("other", make_test_graph(1000 + i));
      svc.drain_retired();
    }
  });
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int j = 0; j < 3; ++j) {
        const auto& r = svc.wait(svc.submit_algorithm("pagerank", "g", 0));
        if (std::make_pair(r.idx, r.vals) != truth) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_writer.store(true);
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(GraphService, SubmitPathSurvivesAllocFaultInjection) {
  GraphService::Options opts;
  opts.service.workers = 1;
  GraphService svc(opts);
  svc.publish("g", make_test_graph(3));
  Graph same = make_test_graph(3);
  const auto truth = tuples(lagraph::pagerank(same, 0.85, 1e-9, 100).rank);
  svc.quiesce();

  // Park the lone worker on a gate: the fault countdown is process-wide, so
  // an accepted job must not start executing (and allocating) while it is
  // still armed — injected failures land on the submit path only.
  std::atomic<bool> gate{false};
  auto blocker = svc.core().submit([&](gb::platform::Governor&) {
    while (!gate.load()) sleep_ms(0.2);
  });

  // Fail the Nth metered allocation during submit, for N = 0, 1, 2, ...
  // until submission survives. After every injected failure the service must
  // remain fully serviceable (strong guarantee: nothing half-enqueued).
  std::uint64_t accepted_job = 0;
  bool accepted = false;
  for (std::uint64_t n = 0; n < 200 && !accepted; ++n) {
    try {
      ScopedFailAfter arm(n);
      accepted_job = svc.submit_algorithm("pagerank", "g", 0);
      accepted = true;
    } catch (const std::bad_alloc&) {
      // expected: injected OOM inside submit
    }
  }
  ASSERT_TRUE(accepted) << "submit never survived 200 allocations";
  gate.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  const auto& r = svc.wait(accepted_job);
  EXPECT_EQ(std::make_pair(r.idx, r.vals), truth);

  // And the shed path stays intact after the fault soak.
  const auto& r2 = svc.wait(svc.submit_algorithm("pagerank", "g", 0));
  EXPECT_EQ(std::make_pair(r2.idx, r2.vals), truth);
}

TEST(GraphService, UnknownNamesAreInvalidValueErrors) {
  GraphService svc;
  EXPECT_THROW((void)svc.snapshot("nope"), gb::Error);
  EXPECT_THROW((void)svc.submit_algorithm("pagerank", "nope", 0), gb::Error);
  svc.publish("g", make_test_graph(1));
  EXPECT_THROW((void)svc.submit_algorithm("quantum", "g", 0), gb::Error);
  EXPECT_THROW((void)svc.poll(12345), gb::Error);
}

TEST(GraphService, ClientCancelSurfacesAsCancelledStop) {
  GraphService::Options opts;
  opts.service.workers = 1;
  GraphService svc(opts);
  svc.publish("g", make_test_graph(13));

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  // Occupy the worker so the algorithm job sits queued when we cancel it.
  auto blocker = svc.core().submit([&](Governor&) {
    entered.store(true);
    while (!release.load()) sleep_ms(0.2);
  });
  while (!entered.load()) sleep_ms(0.2);

  const std::uint64_t job = svc.submit_algorithm("pagerank", "g", 0);
  svc.cancel(job);
  release.store(true);
  EXPECT_EQ(blocker.wait(), Service::State::done);
  const ServiceJobResult& r = svc.wait(job);
  EXPECT_EQ(r.stop, StopReason::cancelled);
  EXPECT_EQ(svc.poll(job), GraphService::JobState::cancelled);
  svc.release(job);
  EXPECT_THROW((void)svc.poll(job), gb::Error);
}
