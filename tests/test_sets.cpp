// Set-style algorithms: MIS, coloring, maximal matching — validated by
// checkers (outputs are not unique, properties are).
#include <gtest/gtest.h>

#include <algorithm>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

std::vector<std::uint8_t> mis_flags(const Graph& g, std::uint64_t seed) {
  auto set = mis(g, seed);
  std::vector<std::uint8_t> flags(g.nrows(), 0);
  std::vector<Index> idx;
  std::vector<bool> val;
  set.extract_tuples(idx, val);
  for (std::size_t k = 0; k < idx.size(); ++k)
    if (val[k]) flags[idx[k]] = 1;
  return flags;
}

}  // namespace

class SetAlgorithms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetAlgorithms, MisIsValidOnVariedGraphs) {
  std::uint64_t seed = GetParam();
  for (auto make : {+[] { return path_graph(30); },
                    +[] { return cycle_graph(17); },
                    +[] { return star_graph(40); },
                    +[] { return complete_graph(9); },
                    +[] { return erdos_renyi(150, 500, 77); },
                    +[] { return rmat(8, 4, 78); }}) {
    Graph g(make(), Kind::undirected);
    auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
    EXPECT_TRUE(ref::valid_mis(sg, mis_flags(g, seed)));
  }
}

TEST_P(SetAlgorithms, ColoringIsProper) {
  std::uint64_t seed = GetParam();
  for (auto make : {+[] { return path_graph(25); },
                    +[] { return complete_graph(8); },
                    +[] { return erdos_renyi(120, 500, 79); },
                    +[] { return rmat(8, 6, 80); }}) {
    Graph g(make(), Kind::undirected);
    auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
    auto colors = to_dense_std(coloring(g, seed), std::uint64_t{0});
    EXPECT_TRUE(ref::valid_coloring(sg, colors));
  }
}

TEST_P(SetAlgorithms, MatchingIsMaximal) {
  std::uint64_t seed = GetParam();
  for (auto make : {+[] { return path_graph(21); },
                    +[] { return star_graph(12); },
                    +[] { return erdos_renyi(100, 350, 81); },
                    +[] { return rmat(7, 4, 82); }}) {
    Graph g(make(), Kind::undirected);
    auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
    // mate is dense (every vertex present; unmatched = own id).
    auto mate = to_dense_std(maximal_matching(g, seed), std::uint64_t{0});
    EXPECT_TRUE(ref::valid_maximal_matching(sg, mate));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetAlgorithms, ::testing::Values(1, 42, 777));

TEST(Mis, CompleteGraphPicksExactlyOne) {
  Graph g(complete_graph(10), Kind::undirected);
  auto flags = mis_flags(g, 5);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 1);
}

TEST(Mis, EmptyGraphPicksAll) {
  gb::Matrix<double> a(7, 7);
  Graph g(std::move(a), Kind::undirected);
  auto flags = mis_flags(g, 5);
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 7);
}

TEST(Mis, SelfLoopsDoNotDeadlock) {
  auto a = path_graph(6);
  a.set_element(2, 2, 1.0);
  Graph g(std::move(a), Kind::undirected);
  auto flags = mis_flags(g, 9);
  auto sg0 = ref::SimpleGraph::from_matrix(g.undirected_view());
  EXPECT_TRUE(ref::valid_mis(sg0, flags));
}

TEST(Coloring, BipartiteGetsFewColors) {
  // Paths are 2-colorable; the independent-set rounds should stay small.
  Graph g(path_graph(50), Kind::undirected);
  auto colors = to_dense_std(coloring(g, 3), std::uint64_t{0});
  auto cmax = *std::max_element(colors.begin(), colors.end());
  EXPECT_LE(cmax, 8u);  // loose bound; proper 2-coloring not guaranteed
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  Graph g(complete_graph(6), Kind::undirected);
  auto colors = to_dense_std(coloring(g, 3), std::uint64_t{0});
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  EXPECT_EQ(colors.size(), 6u);
}

TEST(Matching, PathGraphMatchesFloorHalf) {
  // A maximal matching on an even path matches every vertex when greedy
  // pairs align; at minimum it covers 1/2 of the maximum.
  Graph g(path_graph(10), Kind::undirected);
  auto mate = to_dense_std(maximal_matching(g, 1), std::uint64_t{0});
  int matched = 0;
  for (Index v = 0; v < 10; ++v) {
    if (mate[v] != v) ++matched;
  }
  EXPECT_GE(matched, 6);  // >= 3 edges (maximum is 5)
  EXPECT_EQ(matched % 2, 0);
}
