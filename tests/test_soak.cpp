// Model-based soak tests: long randomized interleavings of mutations and
// reads against simple std::map models. Non-blocking mode (pending tuples +
// zombies + implicit materialisation) is the most stateful machine in the
// library; these runs hammer the interleavings the directed unit tests
// cannot enumerate.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "graphblas/graphblas.hpp"

using gb::Index;

class SoakSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoakSweep, MatrixMutationInterleavings) {
  std::mt19937_64 rng(42000 + GetParam());
  const Index n = 24;
  gb::Matrix<double> m(n, n);
  std::map<std::pair<Index, Index>, double> model;

  for (int step = 0; step < 4000; ++step) {
    int action = static_cast<int>(rng() % 100);
    Index i = rng() % n, j = rng() % n;
    if (action < 45) {  // set
      auto v = static_cast<double>(rng() % 1000) / 8.0;
      m.set_element(i, j, v);
      model[{i, j}] = v;
    } else if (action < 70) {  // remove
      m.remove_element(i, j);
      model.erase({i, j});
    } else if (action < 80) {  // explicit wait
      m.wait();
    } else if (action < 90) {  // point read (forces materialisation)
      auto got = m.extract_element(i, j);
      auto it = model.find({i, j});
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(got.has_value()) << "step " << step;
        EXPECT_EQ(*got, it->second) << "step " << step;
      }
    } else if (action < 95) {  // nvals
      EXPECT_EQ(m.nvals(), model.size()) << "step " << step;
    } else {  // full-state comparison
      std::vector<Index> r, c;
      std::vector<double> v;
      m.extract_tuples(r, c, v);
      ASSERT_EQ(v.size(), model.size()) << "step " << step;
      std::size_t k = 0;
      for (const auto& [key, val] : model) {
        // extract_tuples is row-major sorted; std::map on (row, col) pairs
        // iterates in the same order.
        EXPECT_EQ(r[k], key.first) << "step " << step;
        EXPECT_EQ(c[k], key.second) << "step " << step;
        EXPECT_EQ(v[k], val) << "step " << step;
        ++k;
      }
    }
  }
}

TEST_P(SoakSweep, VectorMutationInterleavingsWithRepChanges) {
  std::mt19937_64 rng(43000 + GetParam());
  const Index n = 64;
  gb::Vector<double> vec(n);
  std::map<Index, double> model;

  for (int step = 0; step < 4000; ++step) {
    int action = static_cast<int>(rng() % 100);
    Index i = rng() % n;
    if (action < 40) {
      auto v = static_cast<double>(rng() % 1000) / 4.0;
      vec.set_element(i, v);
      model[i] = v;
    } else if (action < 65) {
      vec.remove_element(i);
      model.erase(i);
    } else if (action < 72) {  // representation flips must be value-neutral
      vec.to_dense();
    } else if (action < 79) {
      vec.to_sparse();
    } else if (action < 85) {
      vec.auto_rep();
    } else if (action < 95) {
      auto got = vec.extract_element(i);
      auto it = model.find(i);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(got.has_value()) << "step " << step;
        EXPECT_EQ(*got, it->second) << "step " << step;
      }
    } else {
      EXPECT_EQ(vec.nvals(), model.size()) << "step " << step;
    }
  }

  // Final full comparison.
  std::vector<Index> idx;
  std::vector<double> val;
  vec.extract_tuples(idx, val);
  ASSERT_EQ(idx.size(), model.size());
  std::size_t k = 0;
  for (const auto& [i, v] : model) {
    EXPECT_EQ(idx[k], i);
    EXPECT_EQ(val[k], v);
    ++k;
  }
}

TEST_P(SoakSweep, MutationsInterleavedWithOperations) {
  // Operations must observe materialised state mid-stream, and mutations
  // must keep working after operations rebuilt the internals.
  std::mt19937_64 rng(44000 + GetParam());
  const Index n = 16;
  gb::Matrix<double> m(n, n);
  std::map<std::pair<Index, Index>, double> model;

  for (int step = 0; step < 300; ++step) {
    // A burst of mutations...
    for (int b = 0; b < 5; ++b) {
      Index i = rng() % n, j = rng() % n;
      if (rng() % 3 == 0) {
        m.remove_element(i, j);
        model.erase({i, j});
      } else {
        auto v = static_cast<double>(1 + rng() % 9);
        m.set_element(i, j, v);
        model[{i, j}] = v;
      }
    }
    // ...then an operation that must see all of them.
    double got_sum = 0.0;
    switch (rng() % 3) {
      case 0: {
        gb::Vector<double> w(n);
        gb::reduce(w, gb::no_mask, gb::no_accum, gb::plus_monoid<double>(), m);
        got_sum = gb::reduce_scalar(gb::plus_monoid<double>(), w);
        break;
      }
      case 1: {
        gb::Matrix<double> t(n, n);
        gb::transpose(t, gb::no_mask, gb::no_accum, m);
        got_sum = gb::reduce_scalar(gb::plus_monoid<double>(), t);
        break;
      }
      default: {
        gb::Matrix<double> c(n, n);
        gb::apply(c, gb::no_mask, gb::no_accum, gb::Identity{}, m);
        got_sum = gb::reduce_scalar(gb::plus_monoid<double>(), c);
        break;
      }
    }
    double want_sum = 0.0;
    for (const auto& [key, v] : model) want_sum += v;
    EXPECT_DOUBLE_EQ(got_sum, want_sum) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakSweep, ::testing::Range(0, 4));
