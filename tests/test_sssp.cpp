// SSSP: Bellman-Ford and delta-stepping vs Dijkstra (and vs the textbook
// Bellman-Ford when negative edges are present).
#include <gtest/gtest.h>

#include <cmath>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

void expect_dists_match(const Graph& g, const gb::Vector<double>& got,
                        const std::vector<double>& want, double tol = 1e-9) {
  auto dense = to_dense_std(got, std::numeric_limits<double>::infinity());
  ASSERT_EQ(dense.size(), want.size());
  for (std::size_t v = 0; v < want.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(dense[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(dense[v], want[v], tol) << "vertex " << v;
    }
  }
  (void)g;
}

}  // namespace

struct SsspCase {
  const char* name;
  gb::Matrix<double> (*make)();
  Index source;
};

gb::Matrix<double> weighted_grid() { return grid2d(8, 8, 5, 9.0); }
gb::Matrix<double> weighted_er() {
  return randomize_weights(erdos_renyi(120, 400, 9), 0.5, 5.0, 10);
}
gb::Matrix<double> weighted_rmat() {
  return randomize_weights(rmat(8, 6, 11), 1.0, 4.0, 12);
}

class SsspGraphs : public ::testing::TestWithParam<int> {};

TEST_P(SsspGraphs, BellmanFordMatchesDijkstra) {
  gb::Matrix<double> (*makers[])() = {weighted_grid, weighted_er,
                                      weighted_rmat};
  Graph g(makers[GetParam()](), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  for (Index src : {Index{0}, Index{7}}) {
    auto want = ref::dijkstra(sg, src);
    auto got = sssp_bellman_ford(g, src).dist;
    expect_dists_match(g, got, want);
  }
}

TEST_P(SsspGraphs, DeltaSteppingMatchesDijkstra) {
  gb::Matrix<double> (*makers[])() = {weighted_grid, weighted_er,
                                      weighted_rmat};
  Graph g(makers[GetParam()](), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  for (double delta : {0.75, 2.0, 100.0}) {
    auto want = ref::dijkstra(sg, 0);
    auto got = sssp_delta_stepping(g, 0, delta).dist;
    expect_dists_match(g, got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, SsspGraphs, ::testing::Range(0, 3));

TEST(Sssp, UnreachableVerticesAbsent) {
  gb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 2.0);
  Graph g(std::move(a), Kind::directed);
  auto d = sssp_bellman_ford(g, 0).dist;
  EXPECT_EQ(d.nvals(), 2u);
  EXPECT_EQ(d.extract_element(0).value(), 0.0);
  EXPECT_EQ(d.extract_element(1).value(), 2.0);
  EXPECT_FALSE(d.extract_element(3).has_value());
}

TEST(Sssp, NegativeEdgesHandledByBellmanFord) {
  // 0 ->(4) 1 ->(-2) 2; direct 0 ->(3) 2. Best to 2 is 2 via the chain.
  gb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 4.0);
  a.set_element(1, 2, -2.0);
  a.set_element(0, 2, 3.0);
  Graph g(std::move(a), Kind::directed);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto want = ref::bellman_ford(sg, 0);
  auto got = sssp_bellman_ford(g, 0).dist;
  expect_dists_match(g, got, want);
  EXPECT_EQ(got.extract_element(2).value(), 2.0);
}

TEST(Sssp, NegativeCycleThrows) {
  gb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, -3.0);
  a.set_element(2, 0, 1.0);
  Graph g(std::move(a), Kind::directed);
  EXPECT_THROW(sssp_bellman_ford(g, 0), gb::Error);
}

TEST(Sssp, DeltaSteppingValidatesArgs) {
  Graph g(path_graph(4), Kind::undirected);
  EXPECT_THROW(sssp_delta_stepping(g, 0, 0.0), gb::Error);
  EXPECT_THROW(sssp_delta_stepping(g, 9, 1.0), gb::Error);
}

TEST(Sssp, DirectedWeightedChain) {
  gb::Matrix<double> a(5, 5);
  for (Index i = 0; i + 1 < 5; ++i)
    a.set_element(i, i + 1, static_cast<double>(i + 1));
  Graph g(std::move(a), Kind::directed);
  auto d = sssp_delta_stepping(g, 0, 1.5).dist;
  EXPECT_EQ(d.extract_element(4).value(), 10.0);  // 1+2+3+4
}

TEST(Apsp, MatchesRepeatedDijkstra) {
  Graph g(weighted_grid(), Kind::undirected);
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto d = apsp(g);
  for (Index src : {Index{0}, Index{13}, Index{63}}) {
    auto want = ref::dijkstra(sg, src);
    for (Index v = 0; v < sg.n; ++v) {
      auto got = d.extract_element(src, v);
      if (std::isinf(want[v])) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value()) << src << "->" << v;
        EXPECT_NEAR(*got, want[v], 1e-9);
      }
    }
  }
}

TEST(Apsp, DiagonalIsZero) {
  Graph g(cycle_graph(6), Kind::undirected);
  auto d = apsp(g);
  for (Index v = 0; v < 6; ++v) {
    EXPECT_EQ(d.extract_element(v, v).value(), 0.0);
  }
  EXPECT_EQ(d.extract_element(0, 3).value(), 3.0);  // halfway round
}
