// SparseStore unit tests: the physical layer under Matrix. Conversions
// between standard and hypersparse forms, the two transpose strategies
// (bucket vs sort), and the iteration contract kernels rely on.
#include <gtest/gtest.h>

#include "graphblas/sparse_store.hpp"

using gb::Index;
using gb::SparseStore;

namespace {

/// 4x6-ish store: rows 0 -> {1:10, 4:40}, 2 -> {0:5}, 3 -> {2:7, 5:9}.
SparseStore<double> sample_standard() {
  SparseStore<double> s(4);
  s.hyper = false;
  s.p = {0, 2, 2, 3, 5};
  s.i = {1, 4, 0, 2, 5};
  s.x = {10, 40, 5, 7, 9};
  return s;
}

std::vector<std::tuple<Index, Index, double>> dump(
    const SparseStore<double>& s) {
  std::vector<std::tuple<Index, Index, double>> out;
  for (Index k = 0; k < s.nvec(); ++k) {
    for (Index pos = s.vec_begin(k); pos < s.vec_end(k); ++pos) {
      out.emplace_back(s.vec_id(k), s.i[pos], s.x[pos]);
    }
  }
  return out;
}

}  // namespace

TEST(SparseStore, EmptyStartsHypersparse) {
  SparseStore<double> s(1000000000000ULL);
  EXPECT_TRUE(s.hyper);
  EXPECT_EQ(s.nvec(), 0u);
  EXPECT_EQ(s.nnz(), 0u);
  EXPECT_FALSE(s.find_vec(12345).has_value());
  EXPECT_LT(s.memory_bytes(), std::size_t{256});
}

TEST(SparseStore, HyperizeRoundTrip) {
  auto s = sample_standard();
  auto before = dump(s);
  EXPECT_EQ(s.nvec(), 4u);
  EXPECT_EQ(s.nvec_nonempty(), 3u);

  s.hyperize();
  EXPECT_TRUE(s.hyper);
  EXPECT_EQ(s.nvec(), 3u);       // empty row 1 dropped
  EXPECT_EQ(dump(s), before);    // same logical content
  EXPECT_FALSE(s.find_vec(1).has_value());
  ASSERT_TRUE(s.find_vec(3).has_value());
  EXPECT_EQ(s.vec_id(*s.find_vec(3)), 3u);

  s.unhyperize();
  EXPECT_FALSE(s.hyper);
  EXPECT_EQ(s.nvec(), 4u);
  EXPECT_EQ(dump(s), before);
  EXPECT_EQ(s.p.size(), 5u);
}

TEST(SparseStore, FindVecBothForms) {
  auto s = sample_standard();
  EXPECT_TRUE(s.find_vec(0).has_value());
  EXPECT_TRUE(s.find_vec(1).has_value());  // standard: empty rows have slots
  EXPECT_FALSE(s.find_vec(4).has_value());
  s.hyperize();
  EXPECT_TRUE(s.find_vec(0).has_value());
  EXPECT_FALSE(s.find_vec(1).has_value());  // hyper: empty rows are absent
}

TEST(SparseStore, BucketTransposeSmallDims) {
  auto s = sample_standard();
  auto t = s.transposed(6);
  EXPECT_FALSE(t.hyper);  // small minor dim -> bucket strategy, standard out
  EXPECT_EQ(t.vdim, 6u);
  // (0,1,10) becomes (1,0,10) etc.
  auto got = dump(t);
  std::vector<std::tuple<Index, Index, double>> want = {
      {0, 2, 5}, {1, 0, 10}, {2, 3, 7}, {4, 0, 40}, {5, 3, 9}};
  EXPECT_EQ(got, want);
}

TEST(SparseStore, SortTransposeHugeDims) {
  // Hypersparse with enormous minor dimension: the sort strategy must kick
  // in and produce a hypersparse result without O(dim) allocation.
  const Index huge = Index{1} << 42;
  SparseStore<double> s(3);
  s.hyper = false;
  s.p = {0, 2, 2, 3};
  s.i = {7, huge - 1, 1234567890123ULL};
  s.x = {1.0, 2.0, 3.0};

  auto t = s.transposed(huge);
  EXPECT_TRUE(t.hyper);
  EXPECT_EQ(t.nnz(), 3u);
  EXPECT_LT(t.memory_bytes(), std::size_t{4096});
  auto got = dump(t);
  std::vector<std::tuple<Index, Index, double>> want = {
      {7, 0, 1.0}, {1234567890123ULL, 2, 3.0}, {huge - 1, 0, 2.0}};
  EXPECT_EQ(got, want);
}

TEST(SparseStore, TwoTransposeStrategiesAgree) {
  // Same input through both strategies (dimension threshold straddled by
  // padding the minor dim) must give identical logical content.
  auto s = sample_standard();
  auto bucket = s.transposed(6);
  auto sorted = s.transposed(6 * 1000);  // forces sort strategy
  auto a = dump(bucket);
  auto b = dump(sorted);
  EXPECT_EQ(a, b);  // row ids beyond 6 never occur, contents identical
}

TEST(SparseStore, TransposeOfTransposeIsIdentity) {
  auto s = sample_standard();
  auto tt = s.transposed(6).transposed(4);
  EXPECT_EQ(dump(tt), dump(s));
}

TEST(SparseStore, MemoryBytesTracksArrays) {
  SparseStore<double> small(4);
  auto s = sample_standard();
  EXPECT_GT(s.memory_bytes(), small.memory_bytes());
}
