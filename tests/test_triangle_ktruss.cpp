// Triangle counting (all five methods) and k-truss vs brute force.
#include <gtest/gtest.h>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/generator.hpp"
#include "reference/simple_graph.hpp"

using gb::Index;
using namespace lagraph;

namespace {

const TriangleMethod kMethods[] = {
    TriangleMethod::burkhardt, TriangleMethod::cohen, TriangleMethod::sandia_ll,
    TriangleMethod::sandia_uu, TriangleMethod::dot};

void expect_triangles(Graph&& g) {
  auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
  auto want = ref::count_triangles(sg);
  for (auto m : kMethods) {
    EXPECT_EQ(triangle_count(g, m), want)
        << "method " << static_cast<int>(m);
  }
}

}  // namespace

TEST(Triangle, KnownCounts) {
  // K4 has 4 triangles.
  expect_triangles(Graph(complete_graph(4), Kind::undirected));
  // A path has none.
  expect_triangles(Graph(path_graph(10), Kind::undirected));
  // C5 has none; C3 has one.
  expect_triangles(Graph(cycle_graph(5), Kind::undirected));
  expect_triangles(Graph(cycle_graph(3), Kind::undirected));
  // K7: C(7,3) = 35.
  Graph k7(complete_graph(7), Kind::undirected);
  EXPECT_EQ(triangle_count(k7), 35u);
}

TEST(Triangle, RandomGraphsAllMethodsAgree) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    expect_triangles(Graph(erdos_renyi(60, 300, seed), Kind::undirected));
  }
  expect_triangles(Graph(rmat(7, 8, 4), Kind::undirected));
}

TEST(Triangle, SelfLoopsIgnored) {
  auto a = complete_graph(4);
  a.set_element(0, 0, 1.0);
  a.set_element(2, 2, 1.0);
  Graph g(std::move(a), Kind::undirected);
  EXPECT_EQ(triangle_count(g), 4u);
}

TEST(Triangle, DirectedInputUsesUndirectedView) {
  // One directed triangle: 0->1->2->0 still counts as one undirected.
  gb::Matrix<double> a(3, 3);
  a.set_element(0, 1, 1.0);
  a.set_element(1, 2, 1.0);
  a.set_element(2, 0, 1.0);
  Graph g(std::move(a), Kind::directed);
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(Ktruss, KnownShapes) {
  // K4: every edge has support 2, so the 4-truss is K4 itself and the
  // 5-truss is empty.
  Graph k4(complete_graph(4), Kind::undirected);
  auto t4 = ktruss(k4, 4);
  EXPECT_EQ(t4.nedges, 6u);
  auto t5 = ktruss(k4, 5);
  EXPECT_EQ(t5.nedges, 0u);

  // Triangle with a tail: the 3-truss drops the tail.
  gb::Matrix<double> a(5, 5);
  auto add = [&a](Index u, Index v) {
    a.set_element(u, v, 1.0);
    a.set_element(v, u, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(0, 2);
  add(2, 3);
  add(3, 4);
  Graph g(std::move(a), Kind::undirected);
  auto t3 = ktruss(g, 3);
  EXPECT_EQ(t3.nedges, 3u);  // only the triangle survives
  EXPECT_FALSE(t3.c.extract_element(2, 3).has_value());
  EXPECT_TRUE(t3.c.extract_element(0, 1).has_value());
}

TEST(Ktruss, MatchesReferencePeeling) {
  for (std::uint64_t seed : {5u, 6u}) {
    Graph g(erdos_renyi(50, 250, seed), Kind::undirected);
    auto sg = ref::SimpleGraph::from_matrix(g.undirected_view());
    for (std::uint64_t k : {3u, 4u, 5u}) {
      EXPECT_EQ(ktruss(g, k).nedges, ref::ktruss_edge_count(sg, k))
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(Ktruss, SupportValuesAreCorrect) {
  Graph k5(complete_graph(5), Kind::undirected);
  auto t = ktruss(k5, 3);
  // In K5 every edge closes 3 triangles.
  EXPECT_EQ(t.c.extract_element(0, 1).value(), 3);
}

TEST(Ktruss, RejectsSmallK) {
  Graph g(complete_graph(3), Kind::undirected);
  EXPECT_THROW(ktruss(g, 2), gb::Error);
}
