// Type sweep: the opaque objects and core operations across the built-in
// scalar domains (the C API's 11 types minus the float/double duplicates we
// spot-check elsewhere). Catches storage/casting regressions — especially
// around bool, whose physical storage differs (std::vector<bool> dodge).
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"
#include "lagraph/util/check.hpp"

using gb::Index;

template <class T>
class TypedObjects : public ::testing::Test {};

using Domains = ::testing::Types<std::int8_t, std::uint8_t, std::int16_t,
                                 std::uint16_t, std::int32_t, std::uint32_t,
                                 std::int64_t, std::uint64_t, float, double>;
TYPED_TEST_SUITE(TypedObjects, Domains);

TYPED_TEST(TypedObjects, VectorRoundTrip) {
  using T = TypeParam;
  gb::Vector<T> v(10);
  v.set_element(2, T{3});
  v.set_element(7, T{5});
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.extract_element(2).value(), T{3});
  v.remove_element(2);
  EXPECT_FALSE(v.extract_element(2).has_value());

  std::vector<Index> idx;
  std::vector<T> val;
  v.extract_tuples(idx, val);
  EXPECT_EQ(idx, (std::vector<Index>{7}));
  EXPECT_EQ(val[0], T{5});
}

TYPED_TEST(TypedObjects, MatrixRoundTripAndFormats) {
  using T = TypeParam;
  gb::Matrix<T> a(6, 6);
  std::vector<Index> r = {0, 3, 5};
  std::vector<Index> c = {1, 2, 0};
  std::vector<T> v = {T{1}, T{2}, T{3}};
  a.build(r, c, v, gb::Plus{});
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_EQ(a.extract_element(3, 2).value(), T{2});

  // The dual orientation works for every domain.
  a.ensure_dual_format();
  const auto& cols = a.by_col();
  auto k = cols.find_vec(2);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(cols.i[cols.vec_begin(*k)], 3u);
}

TYPED_TEST(TypedObjects, MxvPushPullAgree) {
  using T = TypeParam;
  gb::Matrix<T> a(8, 8);
  for (Index i = 0; i < 8; ++i) {
    a.set_element(i, (i + 1) % 8, T{1});
    a.set_element(i, (i + 3) % 8, T{2});
  }
  gb::Vector<T> u(8);
  for (Index i = 0; i < 8; i += 2) u.set_element(i, T{1});

  gb::Descriptor push, pull;
  push.mxv = gb::MxvMethod::push;
  pull.mxv = gb::MxvMethod::pull;
  gb::Vector<T> w1(8), w2(8);
  gb::mxv(w1, gb::no_mask, gb::no_accum, gb::plus_times<T>(), a, u, push);
  gb::mxv(w2, gb::no_mask, gb::no_accum, gb::plus_times<T>(), a, u, pull);
  EXPECT_TRUE(lagraph::isequal(w1, w2));
  EXPECT_GT(w1.nvals(), 0u);
}

TYPED_TEST(TypedObjects, MinPlusAndReduce) {
  using T = TypeParam;
  gb::Matrix<T> a(4, 4);
  a.set_element(0, 1, T{2});
  a.set_element(1, 2, T{3});
  gb::Vector<T> d(4);
  d.set_element(0, T{0});
  gb::vxm(d, gb::no_mask, gb::Min{}, gb::min_plus<T>(), d, a);
  EXPECT_EQ(d.extract_element(1).value(), T{2});
  EXPECT_EQ(gb::reduce_scalar(gb::max_monoid<T>(), d), T{2});
}

TYPED_TEST(TypedObjects, CrossTypeCasting) {
  // int64 matrix times TypeParam vector into a double output: the write-back
  // typecast chain must hold for every domain.
  using T = TypeParam;
  gb::Matrix<std::int64_t> a(3, 3);
  a.set_element(0, 1, 2);
  gb::Vector<T> u(3);
  u.set_element(1, T{3});
  gb::Vector<double> w(3);
  gb::mxv(w, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, u);
  EXPECT_EQ(w.extract_element(0).value(), 6.0);
}

// Bool has its own semiring family (plus_times over bool is not a ring).
TEST(TypedBool, LogicalOps) {
  gb::Matrix<bool> a(5, 5);
  a.set_element(0, 1, true);
  a.set_element(1, 2, true);
  a.set_element(2, 3, true);
  gb::Vector<bool> u(5);
  u.set_element(0, true);

  // Two reachability steps over lor_land.
  gb::Vector<bool> w(5);
  gb::vxm(w, gb::no_mask, gb::no_accum, gb::lor_land(), u, a);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.extract_element(1).value(), true);
  gb::vxm(w, gb::no_mask, gb::no_accum, gb::lor_land(), w, a);
  EXPECT_EQ(w.extract_element(2).value(), true);

  EXPECT_TRUE(gb::reduce_scalar(gb::lor_monoid(), w));
  EXPECT_TRUE(gb::reduce_scalar(gb::land_monoid(), w));

  gb::Matrix<bool> t = gb::transposed(a);
  EXPECT_EQ(t.extract_element(1, 0).value(), true);
}

TEST(TypedBool, EwiseAndSelect) {
  gb::Vector<bool> u(4), v(4);
  u.set_element(0, true);
  u.set_element(1, false);
  v.set_element(1, true);
  v.set_element(2, true);
  gb::Vector<bool> w(4);
  gb::ewise_add(w, gb::no_mask, gb::no_accum, gb::Lor{}, u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.extract_element(1).value(), true);  // false | true

  gb::Vector<bool> only_true(4);
  gb::select(only_true, gb::no_mask, gb::no_accum, gb::SelValueNe{}, w, false);
  EXPECT_EQ(only_true.nvals(), 3u);  // all three entries are true
}

TEST(TypedBool, BoolMatrixAsValuedMask) {
  // A bool mask with explicit false entries: valued masking must skip them,
  // structural masking must honour them.
  gb::Vector<double> t = gb::Vector<double>::full(3, 7.0);
  gb::Vector<bool> mask(3);
  mask.set_element(0, true);
  mask.set_element(1, false);

  gb::Vector<double> c1(3);
  gb::apply(c1, mask, gb::no_accum, gb::Identity{}, t);
  EXPECT_EQ(c1.nvals(), 1u);

  gb::Vector<double> c2(3);
  gb::apply(c2, mask, gb::no_accum, gb::Identity{}, t, gb::desc_s);
  EXPECT_EQ(c2.nvals(), 2u);
}
