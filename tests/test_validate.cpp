// gb::check — the GxB_*_check-style deep structural validator. Healthy
// objects in every representation must pass; hand-corrupted objects must be
// rejected with the documented Info code (invalid_index for escaped indices,
// invalid_object for internal inconsistency).
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "graphblas/graphblas.hpp"
#include "test_common.hpp"

using gb::CheckLevel;
using gb::HyperMode;
using gb::Index;
using gb::Info;
using gb::Layout;
using DA = gb::DebugAccess<double>;

namespace {

// 4x4 CSR with rows of mixed lengths: p = [0,2,3,5,6]. Pinned to the
// sparse form — these fixtures exist to have their CSR internals
// hand-corrupted, and at 6/16 density the auto policy would otherwise
// store them as a bitmap (no p/i arrays to poke).
gb::Matrix<double> small_matrix(Layout layout = Layout::by_row) {
  gb::Matrix<double> m(4, 4, layout, HyperMode::never);
  m.set_format(gb::FormatMode::sparse);
  std::vector<Index> r = {0, 0, 1, 2, 2, 3};
  std::vector<Index> c = {1, 3, 2, 0, 2, 3};
  std::vector<double> v = {1, 2, 3, 4, 5, 6};
  m.build(r, c, v, gb::Plus{});
  return m;
}

gb::Matrix<double> hyper_matrix() {
  gb::Matrix<double> m(100, 100, Layout::by_row, HyperMode::always);
  m.set_format(gb::FormatMode::sparse);  // hyperlist corruption needs h/p/i
  std::vector<Index> r = {2, 2, 5, 40};
  std::vector<Index> c = {1, 7, 3, 99};
  std::vector<double> v = {1, 2, 3, 4};
  m.build(r, c, v, gb::Plus{});
  return m;
}

void expect_reject(const gb::Matrix<double>& m, Info want,
                   const std::string& needle,
                   CheckLevel level = CheckLevel::full) {
  auto r = gb::check(m, level);
  EXPECT_EQ(r.info, want) << r.message;
  EXPECT_NE(r.message.find(needle), std::string::npos) << r.message;
}

void expect_reject(const gb::Vector<double>& v, Info want,
                   const std::string& needle,
                   CheckLevel level = CheckLevel::full) {
  auto r = gb::check(v, level);
  EXPECT_EQ(r.info, want) << r.message;
  EXPECT_NE(r.message.find(needle), std::string::npos) << r.message;
}

}  // namespace

// ---------------------------------------------------------------------------
// Healthy objects: every representation and lifecycle state must pass.
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsHealthyMatrices) {
  for (auto layout : {Layout::by_row, Layout::by_col}) {
    for (auto hyper : {HyperMode::auto_mode, HyperMode::always,
                       HyperMode::never}) {
      for (double density : {0.0, 0.05, 0.4}) {
        gb::Matrix<double> m(30, 17, layout, hyper);
        auto rnd = testutil::random_matrix(30, 17, density, 7);
        std::vector<Index> r, c;
        std::vector<double> v;
        rnd.extract_tuples(r, c, v);
        m.build(r, c, v, gb::Plus{});
        auto res = gb::check(m, CheckLevel::full);
        EXPECT_TRUE(res.ok())
            << res.message << " layout=" << static_cast<int>(layout)
            << " hyper=" << static_cast<int>(hyper) << " d=" << density;
        EXPECT_TRUE(gb::check(m, CheckLevel::quick).ok());
      }
    }
  }
}

TEST(Validate, AcceptsPendingAndZombieStates) {
  auto m = small_matrix();
  m.set_element(3, 0, 9.0);    // pending tuple
  m.remove_element(0, 1);      // zombie
  auto r = gb::check(m, CheckLevel::full);
  EXPECT_TRUE(r.ok()) << r.message;
  m.wait();
  EXPECT_TRUE(gb::check(m, CheckLevel::full).ok());
}

TEST(Validate, AcceptsOperationResults) {
  auto a = testutil::random_matrix(20, 20, 0.2, 3);
  gb::Matrix<double> c(20, 20);
  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, a);
  auto r = gb::check(c, CheckLevel::full);
  EXPECT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(gb::check(a, CheckLevel::full).ok());
}

TEST(Validate, AcceptsHealthyVectors) {
  auto sparse = testutil::random_vector(50, 0.1, 11);
  auto res = gb::check(sparse, CheckLevel::full);
  EXPECT_TRUE(res.ok()) << res.message;

  auto dense = testutil::random_vector(50, 0.9, 12);
  dense.auto_rep();  // flips to the dense representation at this density
  res = gb::check(dense, CheckLevel::full);
  EXPECT_TRUE(res.ok()) << res.message;

  gb::Vector<double> pending(20);
  pending.set_element(3, 1.0);
  pending.set_element(17, 2.0);
  EXPECT_TRUE(gb::check(pending, CheckLevel::full).ok());
}

// ---------------------------------------------------------------------------
// Corruption 1: non-monotone row pointers.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsNonMonotonePointers) {
  auto m = small_matrix();
  auto& s = DA::store(m);
  std::swap(s.p[1], s.p[2]);  // p = [0,3,2,5,6]
  expect_reject(m, Info::invalid_object, "non-monotone",
                CheckLevel::quick);  // caught even at quick level
}

// ---------------------------------------------------------------------------
// Corruption 2: pointer array end disagrees with nnz.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsPointerEndMismatch) {
  auto m = small_matrix();
  DA::store(m).p.back() += 1;
  expect_reject(m, Info::invalid_object, "pointer array end",
                CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 3: index/value array size mismatch.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsIndexValueSizeMismatch) {
  auto m = small_matrix();
  DA::store(m).x.pop_back();
  expect_reject(m, Info::invalid_object, "sizes differ", CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 4: unsorted column indices within a row (full level only —
// quick never reads the index array).
// ---------------------------------------------------------------------------

TEST(Validate, RejectsUnsortedIndices) {
  auto m = small_matrix();
  auto& s = DA::store(m);
  std::swap(s.i[0], s.i[1]);  // row 0 becomes [3, 1]
  EXPECT_TRUE(gb::check(m, CheckLevel::quick).ok());
  expect_reject(m, Info::invalid_object, "not strictly sorted");
}

// ---------------------------------------------------------------------------
// Corruption 5: duplicate column index within a row.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsDuplicateIndices) {
  auto m = small_matrix();
  auto& s = DA::store(m);
  s.i[1] = s.i[0];  // row 0 becomes [1, 1]
  expect_reject(m, Info::invalid_object, "duplicate entry");
}

// ---------------------------------------------------------------------------
// Corruption 6: column index out of range.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsOutOfRangeIndex) {
  auto m = small_matrix();
  auto& s = DA::store(m);
  s.i[2] = 4;  // ncols is 4; valid minors are 0..3
  expect_reject(m, Info::invalid_index, "minor index 4");
}

// ---------------------------------------------------------------------------
// Corruption 7: hyperlist id out of range.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsHyperlistIdOutOfRange) {
  auto m = hyper_matrix();
  auto& s = DA::store(m);
  ASSERT_TRUE(s.hyper);
  s.h.back() = 100;  // vdim is 100
  expect_reject(m, Info::invalid_index, "hyperlist id", CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 8: hyperlist not strictly sorted.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsUnsortedHyperlist) {
  auto m = hyper_matrix();
  auto& s = DA::store(m);
  ASSERT_GE(s.h.size(), 2u);
  std::swap(s.h[0], s.h[1]);
  expect_reject(m, Info::invalid_object, "hyperlist not strictly sorted",
                CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 9: hyperlist entry naming an empty vector.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsEmptyHyperVector) {
  auto m = hyper_matrix();
  auto& s = DA::store(m);
  ASSERT_TRUE(s.hyper);
  // Append an unused row id past the current maximum (keeps the list
  // sorted) with a zero-length pointer range: p[k+1] == p[k].
  s.h.push_back(s.h.back() + 1);
  s.p.push_back(s.p.back());
  expect_reject(m, Info::invalid_object, "empty vector", CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 10: stale zombie count.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsStaleZombieCount) {
  auto m = small_matrix();
  DA::nzombies(m) = 1;  // nothing is tagged
  EXPECT_TRUE(gb::check(m, CheckLevel::quick).ok());  // quick: count <= nnz
  expect_reject(m, Info::invalid_object, "stale zombie count");
}

TEST(Validate, RejectsZombieCountExceedingEntries) {
  gb::Matrix<double> m(4, 4);
  DA::nzombies(m) = 5;  // empty matrix cannot hold 5 zombies
  expect_reject(m, Info::invalid_object, "exceeds stored entries",
                CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Corruption 11: pending tuple outside the logical shape.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsPendingTupleOutOfRange) {
  auto m = small_matrix();
  DA::pending(m).push_back({4, 0, 1.0});  // nrows is 4
  expect_reject(m, Info::invalid_index, "pending tuple", CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// Vector corruptions.
// ---------------------------------------------------------------------------

TEST(Validate, RejectsVectorUnsortedIndices) {
  gb::Vector<double> v(10);
  v.load_sorted({1, 4, 9}, {1.0, 4.0, 9.0});
  auto& ind = DA::ind(v);
  std::swap(ind[0], ind[2]);
  EXPECT_TRUE(gb::check(v, CheckLevel::quick).ok());
  expect_reject(v, Info::invalid_object, "not strictly sorted");
}

TEST(Validate, RejectsVectorIndexOutOfRange) {
  gb::Vector<double> v(10);
  v.load_sorted({1, 4, 9}, {1.0, 4.0, 9.0});
  DA::ind(v)[2] = 10;
  expect_reject(v, Info::invalid_index, "stored index 10");
}

TEST(Validate, RejectsVectorSizeMismatch) {
  gb::Vector<double> v(10);
  v.load_sorted({1, 4}, {1.0, 4.0});
  DA::val(v).pop_back();
  expect_reject(v, Info::invalid_object, "sizes differ", CheckLevel::quick);
}

TEST(Validate, RejectsVectorDenseCountMismatch) {
  gb::Vector<double> v(8);
  gb::Buf<double> vals(8, 1.0);
  gb::Buf<std::uint8_t> present(8, 1);
  present[3] = 0;
  v.load_dense(std::move(vals), std::move(present));
  EXPECT_TRUE(gb::check(v, CheckLevel::full).ok());
  DA::dnvals(v) += 1;
  EXPECT_TRUE(gb::check(v, CheckLevel::quick).ok());  // quick skips popcount
  expect_reject(v, Info::invalid_object, "disagrees with bitmap");
}

TEST(Validate, RejectsVectorPendingOutOfRange) {
  gb::Vector<double> v(10);
  v.set_element(2, 5.0);
  DA::pending(v).push_back({10, 1.0});
  expect_reject(v, Info::invalid_index, "pending tuple", CheckLevel::quick);
}

// ---------------------------------------------------------------------------
// The validator never repairs: a rejected object stays rejected.
// ---------------------------------------------------------------------------

TEST(Validate, CheckDoesNotMutate) {
  auto m = small_matrix();
  auto& s = DA::store(m);
  std::swap(s.i[0], s.i[1]);
  EXPECT_FALSE(gb::check(m, CheckLevel::full).ok());
  EXPECT_FALSE(gb::check(m, CheckLevel::full).ok());  // still corrupt
  EXPECT_EQ(DA::store(m).i[0], 3u);                   // untouched
}
