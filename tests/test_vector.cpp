// GrB_Vector object semantics: element access, bulk build, resize, and the
// sparse/dense dual representation of Fig. 3.
#include <gtest/gtest.h>

#include "graphblas/graphblas.hpp"

using gb::Index;
using gb::Vector;

TEST(Vector, EmptyAndSize) {
  Vector<double> v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.density(), 0.0);
}

TEST(Vector, SetExtractRemove) {
  Vector<double> v(5);
  v.set_element(1, 1.5);
  v.set_element(3, 3.5);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.extract_element(1).value(), 1.5);
  EXPECT_EQ(v.extract_element(3).value(), 3.5);
  EXPECT_FALSE(v.extract_element(0).has_value());
  v.remove_element(1);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_FALSE(v.extract_element(1).has_value());
  // Removing an absent element is a no-op, not an error.
  EXPECT_NO_THROW(v.remove_element(0));
  EXPECT_THROW(v.set_element(5, 1.0), gb::Error);
  EXPECT_THROW((void)v.extract_element(99), gb::Error);
}

TEST(Vector, SetOverwrites) {
  Vector<int> v(4);
  v.set_element(2, 10);
  v.set_element(2, 20);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_EQ(v.extract_element(2).value(), 20);
}

TEST(Vector, BuildWithDuplicates) {
  Vector<double> v(6);
  std::vector<Index> idx = {4, 1, 4, 2, 1, 1};
  std::vector<double> val = {1, 2, 3, 4, 5, 6};
  v.build(idx, val, gb::Plus{});
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_EQ(v.extract_element(1).value(), 13.0);  // 2+5+6
  EXPECT_EQ(v.extract_element(2).value(), 4.0);
  EXPECT_EQ(v.extract_element(4).value(), 4.0);  // 1+3
}

TEST(Vector, BuildRejectsBadInput) {
  Vector<double> v(3);
  std::vector<Index> idx = {7};
  std::vector<double> val = {1.0};
  EXPECT_THROW(v.build(idx, val, gb::Plus{}), gb::Error);
  Vector<double> w(3);
  w.set_element(0, 1.0);
  std::vector<Index> idx2 = {1};
  EXPECT_THROW(w.build(idx2, val, gb::Plus{}), gb::Error);  // non-empty
}

TEST(Vector, ExtractTuplesSorted) {
  Vector<int> v(10);
  v.set_element(7, 70);
  v.set_element(2, 20);
  v.set_element(5, 50);
  std::vector<Index> idx;
  std::vector<int> val;
  v.extract_tuples(idx, val);
  EXPECT_EQ(idx, (std::vector<Index>{2, 5, 7}));
  EXPECT_EQ(val, (std::vector<int>{20, 50, 70}));
}

TEST(Vector, ClearAndResize) {
  Vector<double> v(8);
  for (Index i = 0; i < 8; i += 2) v.set_element(i, static_cast<double>(i));
  EXPECT_EQ(v.nvals(), 4u);
  v.resize(5);  // keeps 0,2,4
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 3u);
  v.resize(20);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_EQ(v.nvals(), 3u);
  v.clear();
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_EQ(v.size(), 20u);
}

TEST(Vector, FullConstructor) {
  auto v = Vector<double>::full(6, 2.5);
  EXPECT_EQ(v.nvals(), 6u);
  EXPECT_TRUE(v.is_dense_rep());
  for (Index i = 0; i < 6; ++i) EXPECT_EQ(v.extract_element(i).value(), 2.5);
}

TEST(Vector, DualRepresentationRoundTrip) {
  // The Fig. 3 duality: observable value is invariant under representation.
  Vector<double> v(100);
  for (Index i = 0; i < 100; i += 7) v.set_element(i, static_cast<double>(i));
  Index before = v.nvals();

  v.to_dense();
  EXPECT_TRUE(v.is_dense_rep());
  EXPECT_EQ(v.nvals(), before);
  EXPECT_EQ(v.extract_element(14).value(), 14.0);
  EXPECT_FALSE(v.extract_element(15).has_value());

  v.to_sparse();
  EXPECT_FALSE(v.is_dense_rep());
  EXPECT_EQ(v.nvals(), before);
  EXPECT_EQ(v.extract_element(14).value(), 14.0);
}

TEST(Vector, AutoRepresentationThreshold) {
  Vector<double> sparse(1000);
  sparse.set_element(3, 1.0);
  sparse.auto_rep(0.10);
  EXPECT_FALSE(sparse.is_dense_rep());

  Vector<double> dense(10);
  for (Index i = 0; i < 5; ++i) dense.set_element(i, 1.0);
  dense.auto_rep(0.10);
  EXPECT_TRUE(dense.is_dense_rep());
}

TEST(Vector, DenseModeElementOps) {
  auto v = Vector<int>::full(4, 9);
  v.remove_element(2);
  EXPECT_EQ(v.nvals(), 3u);
  v.set_element(2, 5);
  EXPECT_EQ(v.extract_element(2).value(), 5);
  v.resize(2);
  EXPECT_EQ(v.nvals(), 2u);
}

TEST(Vector, BoolVectorWorks) {
  // bool is stored as uint8 internally; the API must stay bool-typed.
  Vector<bool> v(5);
  v.set_element(1, true);
  v.set_element(3, false);  // explicit false is still an entry
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.extract_element(1).value(), true);
  EXPECT_EQ(v.extract_element(3).value(), false);
  std::vector<Index> idx;
  std::vector<bool> val;
  v.extract_tuples(idx, val);
  EXPECT_EQ(idx, (std::vector<Index>{1, 3}));
  EXPECT_EQ(val, (std::vector<bool>{true, false}));
}

TEST(Vector, LoadSortedPublishes) {
  Vector<double> v(10);
  v.load_sorted({1, 4, 9}, {1.0, 4.0, 9.0});
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_EQ(v.extract_element(9).value(), 9.0);
}
