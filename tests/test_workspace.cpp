// Contract tests for gb::platform::Workspace: checkout/checkin reuse,
// metering, fault-injected checkout, cross-thread isolation, and the
// clear_thread release path.
#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <numeric>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graphblas/graphblas.hpp"
#include "platform/alloc.hpp"
#include "platform/workspace.hpp"

namespace {

using gb::platform::Alloc;
using gb::platform::MemoryMeter;
using gb::platform::ScopedFailAfter;
using gb::platform::Workspace;
using gb::platform::WorkspaceStats;

// Distinct tag types so these tests get pools nobody else touches.
struct tag_a;
struct tag_b;
struct tag_iso;
struct tag_fault;
struct tag_clear;
struct tag_exhaust;
struct tag_lifo;
struct tag_depth;
struct tag_evict;

TEST(Workspace, CheckinRetainsCapacityAndCheckoutReuses) {
  Workspace::clear_thread();
  const auto before = Workspace::thread_stats();
  {
    auto h = Workspace::checkout<tag_a, double>(1000);
    EXPECT_EQ(h->size(), 1000u);
  }
  auto mid = Workspace::thread_stats();
  EXPECT_GE(mid.cached_bytes, before.cached_bytes + 1000 * sizeof(double));
  EXPECT_EQ(mid.cached_buffers, before.cached_buffers + 1);

  {
    auto h = Workspace::checkout<tag_a, double>(500);
    // Warm buffer: capacity from the first checkout survives.
    EXPECT_GE(h->capacity(), 1000u);
    EXPECT_EQ(h->size(), 500u);
  }
  auto after = Workspace::thread_stats();
  EXPECT_EQ(after.reuses, mid.reuses + 1);
  Workspace::clear_thread();
}

TEST(Workspace, CheckinResetsContents) {
  Workspace::clear_thread();
  {
    auto h = Workspace::checkout<tag_b, int>(8);
    for (auto& e : *h) e = 42;
  }
  {
    // resize() after the pool's clear() value-initializes: stale contents
    // from the previous call must not leak through.
    auto h = Workspace::checkout<tag_b, int>(8);
    for (int e : *h) EXPECT_EQ(e, 0);
  }
  Workspace::clear_thread();
}

TEST(Workspace, NestedCheckoutSameSiteGetsFreshBuffer) {
  Workspace::clear_thread();
  {
    auto h1 = Workspace::checkout<tag_a, double>(64);
    auto h2 = Workspace::checkout<tag_a, double>(64);  // same site, nested
    EXPECT_NE(h1->data(), h2->data());
    h1->at(0) = 1.0;
    h2->at(0) = 2.0;
    EXPECT_EQ(h1->at(0), 1.0);
  }
  Workspace::clear_thread();
}

TEST(Workspace, FreelistServesLifoOrder) {
  // The per-site freelist is a LIFO: the most recently checked-in buffer
  // (the one most likely still cache-hot) is handed out first.
  Workspace::clear_thread();
  const void* p1 = nullptr;
  const void* p2 = nullptr;
  {
    auto h1 = Workspace::checkout<tag_lifo, double>(64);
    auto h2 = Workspace::checkout<tag_lifo, double>(64);
    p1 = h1->data();
    p2 = h2->data();
    ASSERT_NE(p1, p2);
    // h2 destructs first, then h1 => freelist top is h1's buffer.
  }
  {
    auto h = Workspace::checkout<tag_lifo, double>(64);
    EXPECT_EQ(h->data(), p1);  // last checked in, first out
    auto h2 = Workspace::checkout<tag_lifo, double>(64);
    EXPECT_EQ(h2->data(), p2);
  }
  Workspace::clear_thread();
}

TEST(Workspace, FreelistRetainsUpToFourBuffers) {
  // Depth cap: five simultaneous checkouts of one site check four buffers
  // back into the freelist; the fifth is freed (its capacity is not larger
  // than any cached one, so retention drops it) and the meter shows exactly
  // the four retained allocations.
  Workspace::clear_thread();
  const auto before = Workspace::thread_stats();
  {
    auto h1 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h2 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h3 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h4 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h5 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    (void)h5;
  }
  const auto after = Workspace::thread_stats();
  EXPECT_EQ(after.cached_buffers, before.cached_buffers + 4);
  EXPECT_EQ(after.checkouts, before.checkouts + 5);
  // Four more checkouts are all served warm.
  {
    auto h1 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h2 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h3 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    auto h4 = Workspace::checkout<tag_depth, std::uint64_t>(100);
    EXPECT_GE(h1->capacity(), 100u);
    EXPECT_GE(h4->capacity(), 100u);
  }
  EXPECT_EQ(Workspace::thread_stats().reuses, after.reuses + 4);
  Workspace::clear_thread();
}

TEST(Workspace, FullFreelistKeepsLargestCapacities) {
  // When the freelist is full, a larger incoming buffer evicts the smallest
  // cached one, so the warm set converges on the biggest capacities the
  // site has seen — deterministically, whatever the interleaving.
  Workspace::clear_thread();
  {
    // Five live checkouts: four small and one big. Destruction runs in
    // reverse order, so big/s4/s3/s2 fill the freelist and s1 (small, not
    // larger than any cached buffer) is freed — the big capacity survives.
    auto s1 = Workspace::checkout<tag_evict, double>(10);
    auto s2 = Workspace::checkout<tag_evict, double>(10);
    auto s3 = Workspace::checkout<tag_evict, double>(10);
    auto s4 = Workspace::checkout<tag_evict, double>(10);
    auto big = Workspace::checkout<tag_evict, double>(5000);
    (void)s1;
  }
  std::size_t best = 0;
  {
    // One of the four cached buffers now has the big capacity.
    auto h1 = Workspace::checkout<tag_evict, double>(1);
    auto h2 = Workspace::checkout<tag_evict, double>(1);
    auto h3 = Workspace::checkout<tag_evict, double>(1);
    auto h4 = Workspace::checkout<tag_evict, double>(1);
    best = std::max({h1->capacity(), h2->capacity(), h3->capacity(),
                     h4->capacity()});
  }
  EXPECT_GE(best, 5000u);
  Workspace::clear_thread();
}

TEST(Workspace, MeteredAndClearThreadReleases) {
  Workspace::clear_thread();
  const std::size_t meter0 = MemoryMeter::current_bytes();
  { auto h = Workspace::checkout<tag_clear, std::uint64_t>(4096); }
  // Retained by the pool: still visible in the meter.
  EXPECT_GE(MemoryMeter::current_bytes(), meter0 + 4096 * sizeof(std::uint64_t));
  EXPECT_GT(Workspace::thread_stats().cached_bytes, 0u);
  Workspace::clear_thread();
  EXPECT_EQ(MemoryMeter::current_bytes(), meter0);
  EXPECT_EQ(Workspace::thread_stats().cached_bytes, 0u);
  EXPECT_EQ(Workspace::thread_stats().cached_buffers, 0u);
}

TEST(Workspace, FaultInjectedCheckoutUnwindsCleanly) {
  Workspace::clear_thread();
  const std::size_t meter0 = MemoryMeter::current_bytes();
  bool threw = false;
  {
    ScopedFailAfter guard(0);
    try {
      auto h = Workspace::checkout<tag_fault, double>(1 << 16);
      (void)h;
    } catch (const std::bad_alloc&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  // The failed growth must not leak, and the (empty) buffer returned to the
  // pool must hold no storage.
  EXPECT_EQ(MemoryMeter::current_bytes(), meter0);
  // The pool still works afterwards.
  {
    auto h = Workspace::checkout<tag_fault, double>(128);
    EXPECT_EQ(h->size(), 128u);
  }
  Workspace::clear_thread();
  EXPECT_EQ(MemoryMeter::current_bytes(), meter0);
}

TEST(Workspace, ExhaustionGrowsToRequestEachTime) {
  Workspace::clear_thread();
  // Repeated checkouts with growing demand: capacity ratchets up, stats
  // count every checkout, and nothing is lost along the way.
  std::size_t last_cap = 0;
  for (int round = 1; round <= 6; ++round) {
    auto h = Workspace::checkout<tag_exhaust, int>(
        static_cast<std::size_t>(round) * 1000);
    EXPECT_EQ(h->size(), static_cast<std::size_t>(round) * 1000);
    EXPECT_GE(h->capacity(), last_cap);  // monotone warm capacity
    last_cap = h->capacity();
  }
  auto st = Workspace::thread_stats();
  EXPECT_GE(st.checkouts, 6u);
  EXPECT_GE(st.reuses, 5u);
  Workspace::clear_thread();
}

#ifdef _OPENMP
TEST(Workspace, CrossThreadIsolation) {
  // Each OpenMP thread gets its own arena: concurrent checkouts of the SAME
  // site never alias, and per-thread stats see only their own traffic.
  const int nthreads = omp_get_max_threads() >= 2 ? omp_get_max_threads() : 2;
  std::vector<const void*> ptrs(static_cast<std::size_t>(nthreads), nullptr);
  std::vector<std::uint64_t> checkouts(static_cast<std::size_t>(nthreads), 0);
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    Workspace::clear_thread();
    const auto base = Workspace::thread_stats();
    {
      auto h = Workspace::checkout<tag_iso, double>(256);
      (*h)[0] = static_cast<double>(tid);
      ptrs[static_cast<std::size_t>(tid)] = h->data();
#pragma omp barrier
      // All threads hold their buffer at this point; check the value wasn't
      // clobbered by a neighbour.
      EXPECT_EQ((*h)[0], static_cast<double>(tid));
    }
    checkouts[static_cast<std::size_t>(tid)] =
        Workspace::thread_stats().checkouts - base.checkouts;
    Workspace::clear_thread();
  }
  for (int i = 0; i < nthreads; ++i) {
    EXPECT_EQ(checkouts[static_cast<std::size_t>(i)], 1u) << "thread " << i;
    for (int j = i + 1; j < nthreads; ++j) {
      if (ptrs[static_cast<std::size_t>(i)] != nullptr) {
        EXPECT_NE(ptrs[static_cast<std::size_t>(i)],
                  ptrs[static_cast<std::size_t>(j)])
            << "threads " << i << " and " << j << " shared a buffer";
      }
    }
  }
}
#endif  // _OPENMP

TEST(Workspace, KernelCallsReuseScratchAcrossCalls) {
  // End-to-end: after a warm-up mxm, repeating the identical call is served
  // from the pools (reuses grow) and the meter returns to the same level.
  Workspace::clear_thread();
  gb::Matrix<double> a(8, 8), b(8, 8), c(8, 8);
  for (gb::Index i = 0; i < 8; ++i) {
    a.set_element(i, (i + 1) % 8, 1.0);
    b.set_element(i, (i + 3) % 8, 2.0);
  }
  a.wait();
  b.wait();

  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, b);  // warm
  const auto warm = Workspace::thread_stats();
  const std::size_t meter_warm = gb::platform::MemoryMeter::current_bytes();

  gb::mxm(c, gb::no_mask, gb::no_accum, gb::plus_times<double>(), a, b);
  const auto again = Workspace::thread_stats();
  EXPECT_GT(again.reuses, warm.reuses);
  EXPECT_EQ(gb::platform::MemoryMeter::current_bytes(), meter_warm);
  Workspace::clear_thread();
}

}  // namespace
