#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on timing regressions.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Every numeric key the two files share whose name ends in ``_ms`` is treated
as a timing (lower is better); the script exits 1 if any candidate timing is
more than ``--threshold`` percent (default 10) slower than the baseline.
Speedup keys (ending in ``_speedup``) and structural keys (``n``, ``nnz``,
iteration counts) are reported for context but never gate. Keys present in
only one file are listed and ignored — benches gain and lose measurements
across PRs, and a comparison should not fail on vocabulary drift.

Exit codes: 0 ok, 1 regression found, 2 bad invocation / unreadable input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"bench_compare: {path} is not a JSON object", file=sys.stderr)
        sys.exit(2)
    return doc


def numeric_keys(doc):
    return {
        k: float(v)
        for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="allowed slowdown in percent before failing (default 10)",
    )
    args = ap.parse_args()

    base = numeric_keys(load(args.baseline))
    cand = numeric_keys(load(args.candidate))

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"ignored (baseline only): {', '.join(only_base)}")
    if only_cand:
        print(f"ignored (candidate only): {', '.join(only_cand)}")

    regressions = []
    for key in shared:
        b, c = base[key], cand[key]
        if key.endswith("_ms") and b > 0:
            change = (c - b) / b * 100.0
            flag = ""
            if change > args.threshold:
                regressions.append((key, b, c, change))
                flag = "  <-- REGRESSION"
            print(f"  {key}: {b:.4f} -> {c:.4f} ms ({change:+.1f}%){flag}")
        else:
            print(f"  {key}: {b:g} -> {c:g} (informational)")

    if not any(k.endswith("_ms") for k in shared):
        print("bench_compare: no shared timing keys; nothing to gate")
        return 0

    if regressions:
        print(
            f"\nbench_compare: {len(regressions)} timing(s) regressed more "
            f"than {args.threshold:.0f}%:"
        )
        for key, b, c, change in regressions:
            print(f"  {key}: {b:.4f} -> {c:.4f} ms ({change:+.1f}%)")
        return 1

    print(f"\nbench_compare: ok ({len(shared)} shared keys within threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
