// lagraph_check — the §III/Fig. 1 "test harness" as a standalone tool: load
// a graph from disk (Matrix Market, edge list, or LAGR binary — or generate
// one), run the algorithm suite on it, validate every result against the
// textbook reference layer, and report PASS/FAIL per algorithm.
//
//   lagraph_check <file.mtx|file.el|file.bin> [--directed]
//   lagraph_check --rmat <scale> [--directed]
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>

#include "lagraph/lagraph.hpp"
#include "lagraph/util/check.hpp"
#include "lagraph/util/edgelist.hpp"
#include "lagraph/util/generator.hpp"
#include "lagraph/util/mmio.hpp"
#include "lagraph/util/serialize.hpp"
#include "lagraph/util/stats.hpp"
#include "platform/timer.hpp"
#include "reference/simple_graph.hpp"

namespace {

using gb::Index;

int checks_run = 0;
int checks_failed = 0;

void report(const char* name, bool ok, double ms) {
  ++checks_run;
  if (!ok) ++checks_failed;
  std::printf("  %-28s %s  (%.1f ms)\n", name, ok ? "PASS" : "FAIL", ms);
}

gb::Matrix<double> load(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    auto n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".mtx")) return lagraph::mm_read(path);
  if (ends_with(".bin")) return lagraph::load_matrix(path);
  if (ends_with(".el") || ends_with(".txt") || ends_with(".tsv")) {
    return lagraph::read_edge_list(path);
  }
  throw gb::Error(gb::Info::invalid_value,
                  "unknown file extension (want .mtx, .bin, .el/.txt/.tsv)");
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  // A LAGRAPH_MEM_BUDGET cap (or plain exhaustion) surfaces as bad_alloc
  // from any allocation; fail with a usage-style error, not a terminate().
  try {
    return run(argc, argv);
  } catch (const std::bad_alloc& e) {
    std::fprintf(stderr, "error: out of memory: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int run(int argc, char** argv) {
  gb::Matrix<double> adj;
  lagraph::Kind kind = lagraph::Kind::undirected;
  bool loaded = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--directed") {
      kind = lagraph::Kind::directed;
    } else if (arg == "--rmat" && i + 1 < argc) {
      adj = lagraph::rmat(std::atoi(argv[++i]), 8, 4242);
      loaded = true;
    } else if (arg[0] != '-') {
      try {
        adj = load(arg);
        loaded = true;
      } catch (const gb::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s <file.mtx|file.el|file.bin> [--directed]\n"
                   "       %s --rmat <scale> [--directed]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (!loaded) {
    adj = lagraph::rmat(8, 8, 4242);
    std::printf("no input given; using rmat-8 ef=8\n");
  }
  if (adj.nrows() != adj.ncols()) {
    std::fprintf(stderr, "error: adjacency must be square (got %llux%llu)\n",
                 static_cast<unsigned long long>(adj.nrows()),
                 static_cast<unsigned long long>(adj.ncols()));
    return 2;
  }

  lagraph::Graph g(std::move(adj), kind);
  std::printf("%s\n\n", lagraph::describe(g).c_str());

  // Deep structural validation of the loaded adjacency (GxB-style check):
  // catch corrupt input or a broken loader before blaming an algorithm.
  {
    gb::platform::Timer tcheck;
    auto cr = gb::check(g.adj(), gb::CheckLevel::full);
    if (!cr.ok()) {
      std::fprintf(stderr, "error: adjacency failed structural check: %s\n",
                   cr.message.c_str());
      return 2;
    }
    report("structural check (load)", true, tcheck.millis());
  }
  auto sg = ref::SimpleGraph::from_matrix(g.adj());
  auto su = ref::SimpleGraph::from_matrix(g.undirected_view());
  const Index n = g.nrows();

  // Source: the max-degree vertex.
  Index hub = 0;
  {
    auto deg = lagraph::to_dense_std(g.out_degree(), std::int64_t{0});
    for (Index v = 1; v < n; ++v) {
      if (deg[v] > deg[hub]) hub = v;
    }
  }
  gb::platform::Timer t;

  std::printf("validating against the textbook reference layer:\n");

  {
    t.reset();
    auto res = lagraph::bfs(g, hub);
    auto want = ref::bfs_levels(sg, hub);
    auto got = lagraph::to_dense_std(res.level, std::int64_t{-1});
    bool ok = true;
    for (Index v = 0; v < n; ++v) ok &= got[v] == want[v];
    auto parents = lagraph::to_dense_std(res.parent, std::int64_t{-1});
    ok &= ref::valid_bfs_parents(sg, hub, parents, want);
    report("bfs (level + parent)", ok, t.millis());
  }
  {
    t.reset();
    auto got = lagraph::sssp_bellman_ford(g, hub).dist;
    auto want = ref::dijkstra(sg, hub);
    auto dense = lagraph::to_dense_std(
        got, std::numeric_limits<double>::infinity());
    bool ok = true;
    for (Index v = 0; v < n; ++v) {
      ok &= std::isinf(want[v]) ? std::isinf(dense[v])
                                : std::abs(dense[v] - want[v]) < 1e-9;
    }
    report("sssp (bellman-ford)", ok, t.millis());
  }
  {
    t.reset();
    auto got = lagraph::to_dense_std(lagraph::connected_components(g),
                                     std::uint64_t{0});
    auto want = ref::connected_components(su);
    bool ok = true;
    for (Index v = 0; v < n; ++v) ok &= got[v] == want[v];
    report("connected components", ok, t.millis());
  }
  {
    t.reset();
    bool ok = lagraph::triangle_count(g) == ref::count_triangles(su);
    report("triangle count", ok, t.millis());
  }
  {
    t.reset();
    bool ok = lagraph::ktruss(g, 4).nedges == ref::ktruss_edge_count(su, 4);
    report("k-truss (k=4)", ok, t.millis());
  }
  {
    t.reset();
    auto got = lagraph::to_dense_std(lagraph::kcore(g), std::uint64_t{0});
    auto want = ref::kcore(su);
    bool ok = true;
    for (Index v = 0; v < n; ++v) ok &= got[v] == want[v];
    report("k-core decomposition", ok, t.millis());
  }
  {
    t.reset();
    auto res = lagraph::pagerank(g, 0.85, 1e-12, 200);
    auto want = ref::pagerank(sg, 0.85, 200, 1e-12);
    auto got = lagraph::to_dense_std(res.rank, 0.0);
    bool ok = true;
    for (Index v = 0; v < n; ++v) ok &= std::abs(got[v] - want[v]) < 1e-5;
    report("pagerank", ok, t.millis());
  }
  {
    t.reset();
    auto flags_v = lagraph::mis(g, 7);
    std::vector<std::uint8_t> flags(n, 0);
    std::vector<Index> idx;
    std::vector<bool> val;
    flags_v.extract_tuples(idx, val);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (val[k]) flags[idx[k]] = 1;
    }
    report("maximal independent set", ref::valid_mis(su, flags), t.millis());
  }
  {
    t.reset();
    auto colors = lagraph::to_dense_std(lagraph::coloring(g, 7),
                                        std::uint64_t{0});
    report("greedy coloring", ref::valid_coloring(su, colors), t.millis());
  }
  {
    t.reset();
    auto mate = lagraph::to_dense_std(lagraph::maximal_matching(g, 7),
                                      std::uint64_t{0});
    report("maximal matching", ref::valid_maximal_matching(su, mate),
           t.millis());
  }
  if (n <= 4096) {
    t.reset();
    std::vector<Index> sources(std::min<Index>(n, 16));
    std::iota(sources.begin(), sources.end(), Index{0});
    auto got = lagraph::to_dense_std(lagraph::betweenness(g, sources), 0.0);
    // Validate the batch against per-source Brandes only when the batch is
    // the full vertex set (small graphs).
    bool ok = true;
    if (sources.size() == n) {
      auto want = ref::betweenness(sg);
      for (Index v = 0; v < n; ++v) ok &= std::abs(got[v] - want[v]) < 1e-6;
    }
    report("betweenness (batch)", ok, t.millis());
  }

  // The suite must not have corrupted the graph it ran on.
  {
    t.reset();
    auto cr = gb::check(g.adj(), gb::CheckLevel::full);
    if (!cr.ok()) {
      std::fprintf(stderr, "structural check after suite: %s\n",
                   cr.message.c_str());
    }
    report("structural check (post-run)", cr.ok(), t.millis());
  }

  std::printf("\n%d checks, %d failed\n", checks_run, checks_failed);
  return checks_failed == 0 ? 0 : 1;
}
